// Package experiments wires the library into the paper's evaluation: one
// entry point per table and figure in Section 5, shared by the ltr-bench
// command and the root benchmark suite. Each experiment returns structured
// results plus a paper-style text rendering.
//
// The paper's corpora are substituted by the synthetic worlds of
// internal/synth (see DESIGN.md §4); Scale controls how much of the
// protocol runs so benchmarks stay fast while the CLI can run the full
// panel sizes.
package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"time"

	"longtailrec"
	"longtailrec/internal/dataset"
	"longtailrec/internal/eval"
	"longtailrec/internal/lda"
	"longtailrec/internal/synth"
	"longtailrec/internal/worlds"
)

// Scale sets the protocol sizes. The paper's values are TestRatings=4000,
// Negatives=1000, PanelUsers=2000, Evaluators=50, MaxN=50, ListSize=10.
type Scale struct {
	TestRatings int
	Negatives   int
	PanelUsers  int
	Evaluators  int
	MaxN        int
	ListSize    int
}

// QuickScale is sized for CI benchmarks: every experiment finishes in
// seconds while preserving the paper's orderings.
func QuickScale() Scale {
	return Scale{TestRatings: 120, Negatives: 300, PanelUsers: 80, Evaluators: 30, MaxN: 50, ListSize: 10}
}

// FullScale approximates the paper's protocol sizes (minutes, not seconds).
func FullScale() Scale {
	return Scale{TestRatings: 1000, Negatives: 1000, PanelUsers: 400, Evaluators: 50, MaxN: 50, ListSize: 10}
}

// Env is a prepared experimental environment: a synthetic world, a
// train/test split, a trained System, and a test-user panel.
type Env struct {
	Kind  string // "movielens" or "douban"
	Scale Scale
	World *synth.World
	Split *dataset.HeldOutSplit
	Sys   *longtail.System
	Panel []int
}

// NewEnv generates the corpus for kind (a worlds.Kinds name: "movielens"
// or "douban"), holds out the long-tail test ratings, and builds the
// System on the training half. Deterministic given seed.
func NewEnv(kind string, scale Scale, seed int64) (*Env, error) {
	cfg, err := worlds.Config(kind, seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	world, err := synth.Generate(cfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 17))
	split, err := world.Data.SplitLongTailTest(rng, scale.TestRatings, 5, 0.2)
	if err != nil {
		return nil, fmt.Errorf("experiments: split: %w", err)
	}
	sysCfg := longtail.DefaultConfig()
	sysCfg.Seed = seed
	sysCfg.LDA = lda.Config{NumTopics: cfg.NumGenres * 2, Iterations: 40, Seed: seed + 3}
	sysCfg.SVDRank = 40
	sys, err := longtail.NewSystem(split.Train, sysCfg)
	if err != nil {
		return nil, err
	}
	panel, err := split.Train.SampleUsers(rng, scale.PanelUsers, 3)
	if err != nil {
		return nil, fmt.Errorf("experiments: panel: %w", err)
	}
	return &Env{Kind: kind, Scale: scale, World: world, Split: split, Sys: sys, Panel: panel}, nil
}

// Suite returns the paper's seven algorithms trained on the env.
func (e *Env) Suite() ([]longtail.Recommender, error) {
	return e.Sys.PaperSuite()
}

// renderTable formats rows of label→values with a header.
func renderTable(title string, header []string, rows [][]string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(header)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// Figure2Result is the §3.3 worked example.
type Figure2Result struct {
	// HittingTimes maps movie labels (M1..M6) to H(U5|M); rated movies
	// are omitted.
	HittingTimes map[string]float64
	// Ranking is the ascending-hitting-time order of candidate movies.
	Ranking []string
	Text    string
}

// Figure2 reproduces the worked example: the Figure 2 graph, query user
// U5, exact hitting times, and the niche-first ranking M4 < M1 < M5 < M6.
func Figure2() (*Figure2Result, error) {
	d, err := dataset.New(5, 6, []dataset.Rating{
		{User: 0, Item: 0, Score: 5}, {User: 0, Item: 1, Score: 3}, {User: 0, Item: 4, Score: 3}, {User: 0, Item: 5, Score: 5},
		{User: 1, Item: 0, Score: 5}, {User: 1, Item: 1, Score: 4}, {User: 1, Item: 2, Score: 5}, {User: 1, Item: 4, Score: 4}, {User: 1, Item: 5, Score: 5},
		{User: 2, Item: 0, Score: 4}, {User: 2, Item: 1, Score: 5}, {User: 2, Item: 2, Score: 4},
		{User: 3, Item: 2, Score: 5}, {User: 3, Item: 3, Score: 5},
		{User: 4, Item: 1, Score: 4}, {User: 4, Item: 2, Score: 5},
	})
	if err != nil {
		return nil, err
	}
	cfg := longtail.DefaultConfig()
	cfg.Walk.Exact = true
	sys, err := longtail.NewSystem(d, cfg)
	if err != nil {
		return nil, err
	}
	recs, err := sys.HT().Recommend(4, 4)
	if err != nil {
		return nil, err
	}
	res := &Figure2Result{HittingTimes: make(map[string]float64)}
	rows := make([][]string, 0, len(recs))
	for _, r := range recs {
		label := fmt.Sprintf("M%d", r.Item+1)
		ht := -r.Score
		res.HittingTimes[label] = ht
		res.Ranking = append(res.Ranking, label)
		rows = append(rows, []string{label, fmt.Sprintf("%.1f", ht)})
	}
	res.Text = renderTable("Figure 2 worked example: H(U5|M) (paper: M4=17.7 M1=19.6 M5=20.2 M6=20.3)",
		[]string{"movie", "hitting time"}, rows)
	return res, nil
}

// Table1Result is the topic-readout experiment.
type Table1Result struct {
	// Topics[t] lists the genre labels of topic t's top items.
	Topics [][]string
	// Purity is the fraction of top items whose genre matches their
	// topic's majority genre (1.0 = perfectly coherent topics).
	Purity float64
	Text   string
}

// Table1 trains the rating-LDA on a synthetic world and reads out the top
// items per topic with their ground-truth genres — the analogue of the
// paper's "Children's vs Action" topic table.
func Table1(env *Env, topicsToShow, itemsPerTopic int) (*Table1Result, error) {
	model, err := env.Sys.LDAModel()
	if err != nil {
		return nil, err
	}
	if topicsToShow <= 0 || topicsToShow > model.NumTopics() {
		topicsToShow = 2
	}
	if itemsPerTopic <= 0 {
		itemsPerTopic = 5
	}
	res := &Table1Result{}
	var rows [][]string
	matches, total := 0, 0
	for z := 0; z < topicsToShow; z++ {
		top := model.TopItems(z, itemsPerTopic)
		labels := make([]string, 0, len(top))
		genreCount := map[int]int{}
		for _, ti := range top {
			g := env.World.ItemGenre[ti.Item]
			genreCount[g]++
			labels = append(labels, fmt.Sprintf("%s(%s)", env.World.ItemName(ti.Item), env.World.GenreName(g)))
		}
		best := 0
		for _, c := range genreCount {
			if c > best {
				best = c
			}
		}
		matches += best
		total += len(top)
		res.Topics = append(res.Topics, labels)
		rows = append(rows, []string{fmt.Sprintf("Topic %d", z+1), strings.Join(labels, ", ")})
	}
	if total > 0 {
		res.Purity = float64(matches) / float64(total)
	}
	res.Text = renderTable(fmt.Sprintf("Table 1 analogue: top items per LDA topic (purity %.2f)", res.Purity),
		[]string{"topic", "top items (ground-truth genre)"}, rows)
	return res, nil
}

// RecallCurves is the Figure 5 output.
type RecallCurves struct {
	Dataset string
	Results []eval.RecallResult
	Text    string
}

// Figure5 runs the Recall@N protocol over the paper suite.
func Figure5(env *Env) (*RecallCurves, error) {
	suite, err := env.Suite()
	if err != nil {
		return nil, err
	}
	res, err := eval.Recall(suite, env.Split.Train, env.Split.Test, eval.RecallOptions{
		NumNegatives: env.Scale.Negatives,
		MaxN:         env.Scale.MaxN,
		Seed:         99,
	})
	if err != nil {
		return nil, err
	}
	out := &RecallCurves{Dataset: env.Kind, Results: res}
	header := []string{"algorithm", "R@5", "R@10", "R@20", "R@50"}
	var rows [][]string
	for _, r := range res {
		pick := func(n int) string {
			if n > len(r.Recall) {
				n = len(r.Recall)
			}
			return fmt.Sprintf("%.3f", r.Recall[n-1])
		}
		rows = append(rows, []string{r.Name, pick(5), pick(10), pick(20), pick(50)})
	}
	out.Text = renderTable(fmt.Sprintf("Figure 5 (%s): Recall@N (paper order AC2>AC1>AT>HT>DPPR/PureSVD/LDA)", env.Kind),
		header, rows)
	return out, nil
}

// ListPanel is the shared Figure 6 / Tables 2, 3, 5 measurement.
type ListPanel struct {
	Dataset string
	Metrics []eval.ListMetrics
	Text    string
}

// ListExperiments runs the §5.2.2–§5.2.6 panel once, yielding
// Popularity@N (Figure 6), Diversity (Table 2), Similarity (Table 3) and
// per-user latency (Table 5).
func ListExperiments(env *Env) (*ListPanel, error) {
	suite, err := env.Suite()
	if err != nil {
		return nil, err
	}
	ms, err := eval.Lists(suite, env.Split.Train, env.Panel, eval.ListOptions{
		ListSize: env.Scale.ListSize,
		Ontology: env.World.Ontology,
	})
	if err != nil {
		return nil, err
	}
	out := &ListPanel{Dataset: env.Kind, Metrics: ms}
	var rows [][]string
	for _, m := range ms {
		rows = append(rows, []string{
			m.Name,
			fmt.Sprintf("%.1f", m.MeanPopularity),
			fmt.Sprintf("%.3f", m.Diversity),
			fmt.Sprintf("%.3f", m.Similarity),
			fmt.Sprintf("%.4fs", m.SecondsPerUser),
		})
	}
	out.Text = renderTable(
		fmt.Sprintf("Figure 6 + Tables 2/3/5 (%s): top-%d lists over %d users",
			env.Kind, env.Scale.ListSize, len(env.Panel)),
		[]string{"algorithm", "mean popularity", "diversity", "similarity", "sec/user"}, rows)
	return out, nil
}

// Figure6Text renders the per-position popularity curves of a ListPanel —
// the Figure 6 view (Popularity@N for N = 1..listSize).
func Figure6Text(lp *ListPanel) string {
	if len(lp.Metrics) == 0 {
		return ""
	}
	positions := len(lp.Metrics[0].PopularityAt)
	header := make([]string, 0, positions+1)
	header = append(header, "algorithm")
	for n := 1; n <= positions; n++ {
		header = append(header, fmt.Sprintf("P@%d", n))
	}
	var rows [][]string
	for _, m := range lp.Metrics {
		row := make([]string, 0, positions+1)
		row = append(row, m.Name)
		for _, p := range m.PopularityAt {
			row = append(row, fmt.Sprintf("%.0f", p))
		}
		rows = append(rows, row)
	}
	return renderTable(fmt.Sprintf("Figure 6 (%s): mean popularity of the item at position N", lp.Dataset),
		header, rows)
}

// MuSweepRow is one µ setting of Table 4.
type MuSweepRow struct {
	Mu             int
	MeanPopularity float64
	Similarity     float64
	Diversity      float64
	SecondsPerUser float64
}

// MuSweep is the Table 4 output.
type MuSweep struct {
	Rows []MuSweepRow
	Text string
}

// Table4 sweeps the subgraph budget µ for AC2 and measures popularity,
// similarity, diversity and latency, as in Table 4. mus of 0 or less mean
// "whole graph".
func Table4(env *Env, mus []int) (*MuSweep, error) {
	if len(mus) == 0 {
		mus = []int{400, 800, 1600, 0}
	}
	// AC2 needs topic entropies once; rebuild the recommender per µ.
	model, err := env.Sys.LDAModel()
	if err != nil {
		return nil, err
	}
	_ = model
	out := &MuSweep{}
	var rows [][]string
	for _, mu := range mus {
		cfg := longtail.DefaultConfig()
		cfg.Seed = 5
		cfg.LDA = lda.Config{NumTopics: 8, Iterations: 30, Seed: 11}
		cfg.Walk.MaxSubgraphItems = mu
		if mu <= 0 {
			cfg.Walk.MaxSubgraphItems = env.Split.Train.NumItems() + 1
		}
		sys, err := longtail.NewSystem(env.Split.Train, cfg)
		if err != nil {
			return nil, err
		}
		ac2, err := sys.AC2()
		if err != nil {
			return nil, err
		}
		ms, err := eval.Lists([]longtail.Recommender{ac2}, env.Split.Train, env.Panel, eval.ListOptions{
			ListSize: env.Scale.ListSize,
			Ontology: env.World.Ontology,
		})
		if err != nil {
			return nil, err
		}
		m := ms[0]
		label := mu
		if mu <= 0 {
			label = env.Split.Train.NumItems()
		}
		out.Rows = append(out.Rows, MuSweepRow{
			Mu:             label,
			MeanPopularity: m.MeanPopularity,
			Similarity:     m.Similarity,
			Diversity:      m.Diversity,
			SecondsPerUser: m.SecondsPerUser,
		})
		rows = append(rows, []string{
			fmt.Sprintf("%d", label),
			fmt.Sprintf("%.1f", m.MeanPopularity),
			fmt.Sprintf("%.3f", m.Similarity),
			fmt.Sprintf("%.3f", m.Diversity),
			fmt.Sprintf("%.4fs", m.SecondsPerUser),
		})
	}
	out.Text = renderTable("Table 4: impact of subgraph budget µ on AC2",
		[]string{"mu", "popularity", "similarity", "diversity", "sec/user"}, rows)
	return out, nil
}

// StudyPanel is the Table 6 output.
type StudyPanel struct {
	Results []eval.StudyResult
	Text    string
}

// Table6 runs the simulated user study over the four algorithms of the
// paper's survey: AC2, DPPR, PureSVD, LDA.
func Table6(env *Env) (*StudyPanel, error) {
	ac2, err := env.Sys.AC2()
	if err != nil {
		return nil, err
	}
	psvd, err := env.Sys.PureSVD()
	if err != nil {
		return nil, err
	}
	ldaRec, err := env.Sys.LDA()
	if err != nil {
		return nil, err
	}
	recs := []longtail.Recommender{ac2, env.Sys.DPPR(), psvd, ldaRec}
	evaluators := env.Panel
	if len(evaluators) > env.Scale.Evaluators {
		evaluators = evaluators[:env.Scale.Evaluators]
	}
	res, err := eval.UserStudy(recs, env.World, env.Split.Train, evaluators, eval.StudyOptions{
		ListSize: env.Scale.ListSize,
	})
	if err != nil {
		return nil, err
	}
	out := &StudyPanel{Results: res}
	var rows [][]string
	for _, r := range res {
		rows = append(rows, []string{
			r.Name,
			fmt.Sprintf("%.2f", r.Preference),
			fmt.Sprintf("%.2f", r.Novelty),
			fmt.Sprintf("%.2f", r.Serendipity),
			fmt.Sprintf("%.2f", r.Score),
		})
	}
	out.Text = renderTable(fmt.Sprintf("Table 6: simulated user study (%d evaluators)", len(evaluators)),
		[]string{"algorithm", "preference", "novelty", "serendipity", "score"}, rows)
	return out, nil
}

// SalesDiversityPanel is the extension experiment quantifying the
// rich-get-richer effect (§5.2.3's motivation, Fleder & Hosanagar) with
// aggregate exposure measures: Gini, catalog coverage and tail share.
type SalesDiversityPanel struct {
	Dataset string
	Results []eval.SalesDiversity
	Text    string
}

// SalesDiversityExperiment measures exposure concentration for the paper
// suite plus the AC3 extension and the popularity floor.
func SalesDiversityExperiment(env *Env) (*SalesDiversityPanel, error) {
	suite, err := env.Suite()
	if err != nil {
		return nil, err
	}
	ac3, err := env.Sys.AC3()
	if err != nil {
		return nil, err
	}
	recs := append(append([]longtail.Recommender{}, suite...), ac3, env.Sys.MostPopular())
	res, err := eval.MeasureSalesDiversity(recs, env.Split.Train, env.Panel, env.Scale.ListSize)
	if err != nil {
		return nil, err
	}
	out := &SalesDiversityPanel{Dataset: env.Kind, Results: res}
	var rows [][]string
	for _, r := range res {
		rows = append(rows, []string{
			r.Name,
			fmt.Sprintf("%.3f", r.Gini),
			fmt.Sprintf("%.3f", r.Coverage),
			fmt.Sprintf("%.3f", r.TailShare),
		})
	}
	out.Text = renderTable(
		fmt.Sprintf("Sales diversity extension (%s): exposure concentration over %d users",
			env.Kind, len(env.Panel)),
		[]string{"algorithm", "gini", "coverage", "tail share"}, rows)
	return out, nil
}

// RankingPanel is the extension experiment reporting MRR/NDCG/mean-rank on
// the same candidate-ranking protocol as Figure 5.
type RankingPanel struct {
	Dataset string
	Results []eval.RankingResult
	Text    string
}

// RankingExperiment runs the rank-sensitive view of the recall protocol.
func RankingExperiment(env *Env) (*RankingPanel, error) {
	suite, err := env.Suite()
	if err != nil {
		return nil, err
	}
	res, err := eval.RankingMetrics(suite, env.Split.Train, env.Split.Test, eval.RecallOptions{
		NumNegatives: env.Scale.Negatives,
		MaxN:         env.Scale.MaxN,
		Seed:         99, // same candidates as Figure5
		Parallelism:  4,
	})
	if err != nil {
		return nil, err
	}
	out := &RankingPanel{Dataset: env.Kind, Results: res}
	var rows [][]string
	for _, r := range res {
		rows = append(rows, []string{
			r.Name,
			fmt.Sprintf("%.4f", r.MRR),
			fmt.Sprintf("%.4f", r.NDCG),
			fmt.Sprintf("%.1f", r.MeanRank),
		})
	}
	out.Text = renderTable(
		fmt.Sprintf("Ranking extension (%s): MRR / NDCG on the Figure 5 protocol", env.Kind),
		[]string{"algorithm", "MRR", "NDCG", "mean rank"}, rows)
	return out, nil
}

// BeyondAccuracyPanel is the extension experiment reporting novelty,
// serendipity, intra-list similarity, coverage and cold-start share — the
// beyond-accuracy view of the paper's Table 6 and §5.2.3 arguments.
type BeyondAccuracyPanel struct {
	Dataset string
	Results []eval.BeyondAccuracy
	Text    string
}

// BeyondAccuracyExperiment measures beyond-accuracy list quality for the
// paper suite plus the popularity floor.
func BeyondAccuracyExperiment(env *Env) (*BeyondAccuracyPanel, error) {
	suite, err := env.Suite()
	if err != nil {
		return nil, err
	}
	recs := append(append([]longtail.Recommender{}, suite...), env.Sys.MostPopular())
	res, err := eval.MeasureBeyondAccuracy(recs, env.Split.Train, env.Panel, eval.BeyondAccuracyOptions{
		ListSize: env.Scale.ListSize,
		Ontology: env.World.Ontology,
	})
	if err != nil {
		return nil, err
	}
	out := &BeyondAccuracyPanel{Dataset: env.Kind, Results: res}
	var rows [][]string
	for _, r := range res {
		rows = append(rows, []string{
			r.Name,
			fmt.Sprintf("%.2f", r.Novelty),
			fmt.Sprintf("%.3f", r.Serendipity),
			fmt.Sprintf("%.3f", r.IntraListSimilarity),
			fmt.Sprintf("%.3f", r.Coverage),
			fmt.Sprintf("%.3f", r.ColdStartShare),
		})
	}
	out.Text = renderTable(
		fmt.Sprintf("Beyond-accuracy extension (%s): top-%d lists over %d users",
			env.Kind, env.Scale.ListSize, len(env.Panel)),
		[]string{"algorithm", "novelty(bits)", "serendipity", "ILS", "coverage", "cold share"}, rows)
	return out, nil
}

// StratifiedPanel is the extension experiment reporting recall broken
// down by held-out item popularity, with a bootstrap confidence interval
// on the overall Recall@10 — how far into the tail each algorithm's
// accuracy actually reaches.
type StratifiedPanel struct {
	Dataset   string
	Results   []eval.StratifiedResult
	Intervals []eval.RecallInterval
	Text      string
}

// StratifiedExperiment splits the Figure 5 protocol at popularity 10 and
// 50 and adds 95% bootstrap intervals at N=10.
func StratifiedExperiment(env *Env) (*StratifiedPanel, error) {
	suite, err := env.Suite()
	if err != nil {
		return nil, err
	}
	opts := eval.RecallOptions{
		NumNegatives: env.Scale.Negatives,
		MaxN:         env.Scale.MaxN,
		Seed:         99, // same candidates as Figure5
		Parallelism:  4,
	}
	bounds := []int{10, 50, 1 << 30}
	res, err := eval.StratifiedRecall(suite, env.Split.Train, env.Split.Test, bounds, opts)
	if err != nil {
		return nil, err
	}
	ivs, err := eval.BootstrapRecall(suite, env.Split.Train, env.Split.Test, 10, 0.95, 500, opts)
	if err != nil {
		return nil, err
	}
	out := &StratifiedPanel{Dataset: env.Kind, Results: res, Intervals: ivs}
	header := []string{"algorithm"}
	for _, s := range res[0].Strata {
		label := fmt.Sprintf("R@10 pop<=%d (n=%d)", s.MaxPopularity, s.Cases)
		if s.MaxPopularity >= 1<<30 {
			label = fmt.Sprintf("R@10 head (n=%d)", s.Cases)
		}
		header = append(header, label)
	}
	header = append(header, "R@10 95% CI")
	var rows [][]string
	for k, r := range res {
		row := []string{r.Name}
		for _, s := range r.Strata {
			row = append(row, fmt.Sprintf("%.3f", at(s.RecallAtN, 10)))
		}
		row = append(row, fmt.Sprintf("%.3f [%.3f,%.3f]", ivs[k].Point, ivs[k].Lo, ivs[k].Hi))
		rows = append(rows, row)
	}
	out.Text = renderTable(
		fmt.Sprintf("Stratified-recall extension (%s): accuracy by held-out item popularity", env.Kind),
		header, rows)
	return out, nil
}

// ThroughputRow is one parallelism setting of the batch-scaling sweep.
type ThroughputRow struct {
	Algorithm   string
	Parallelism int
	UsersPerSec float64
	Speedup     float64 // versus the same algorithm at parallelism 1
}

// ThroughputPanel is the batch-throughput extension output: how per-query
// cost amortizes when the panel is served through the pooled walk query
// engine's RecommendBatch instead of one Recommend call at a time.
type ThroughputPanel struct {
	Dataset string
	Rows    []ThroughputRow
	Text    string
}

// ThroughputExperiment measures RecommendBatch users/sec for the walk
// recommenders over the env panel at increasing parallelism (1, 2, ...,
// GOMAXPROCS). The walk algorithms share one engine design, so AT and AC2
// stand in for the family. Each measurement serves the whole panel rounds
// times to smooth scheduler noise.
func ThroughputExperiment(env *Env) (*ThroughputPanel, error) {
	ac2, err := env.Sys.AC2()
	if err != nil {
		return nil, err
	}
	recs := []longtail.Recommender{env.Sys.AT(), ac2}
	levels := []int{1}
	for p := 2; p <= runtime.GOMAXPROCS(0); p *= 2 {
		levels = append(levels, p)
	}
	if max := runtime.GOMAXPROCS(0); levels[len(levels)-1] != max && max > 1 {
		levels = append(levels, max)
	}
	const rounds = 2
	out := &ThroughputPanel{Dataset: env.Kind}
	var rows [][]string
	for _, rec := range recs {
		br, ok := rec.(longtail.BatchRecommender)
		if !ok {
			return nil, fmt.Errorf("experiments: %s does not support batch scoring", rec.Name())
		}
		base := 0.0
		for _, p := range levels {
			start := time.Now()
			for r := 0; r < rounds; r++ {
				if _, err := br.RecommendBatch(env.Panel, env.Scale.ListSize, p); err != nil {
					return nil, fmt.Errorf("experiments: %s batch: %w", rec.Name(), err)
				}
			}
			elapsed := time.Since(start).Seconds()
			ups := float64(rounds*len(env.Panel)) / elapsed
			if p == 1 {
				base = ups
			}
			speedup := 0.0
			if base > 0 {
				speedup = ups / base
			}
			out.Rows = append(out.Rows, ThroughputRow{
				Algorithm: rec.Name(), Parallelism: p,
				UsersPerSec: ups, Speedup: speedup,
			})
			rows = append(rows, []string{
				rec.Name(),
				fmt.Sprintf("%d", p),
				fmt.Sprintf("%.1f", ups),
				fmt.Sprintf("%.2fx", speedup),
			})
		}
	}
	out.Text = renderTable(
		fmt.Sprintf("Batch-throughput extension (%s): RecommendBatch over %d users", env.Kind, len(env.Panel)),
		[]string{"algorithm", "parallelism", "users/sec", "speedup"}, rows)
	return out, nil
}

// at reads curve[n-1] defensively.
func at(curve []float64, n int) float64 {
	if n > len(curve) {
		n = len(curve)
	}
	if n == 0 {
		return 0
	}
	return curve[n-1]
}

// Names lists the experiment identifiers understood by ltr-bench.
func Names() []string {
	names := []string{"fig2", "table1", "fig5a", "fig5b", "fig6a", "fig6b", "table2", "table3", "table4", "table5", "table6", "gini", "ranking", "beyond", "strata", "throughput"}
	sort.Strings(names)
	return names
}
