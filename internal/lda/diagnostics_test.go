package lda

import (
	"math"
	"testing"

	"longtailrec/internal/dataset"
)

// genreDataset builds two clean taste communities: users 0..5 rate items
// 0..5, users 6..11 rate items 6..11, with one bridge rating keeping the
// graph connected.
func genreDataset(t testing.TB) *dataset.Dataset {
	t.Helper()
	var ratings []dataset.Rating
	for u := 0; u < 6; u++ {
		for i := 0; i < 6; i++ {
			if (u+i)%3 == 0 {
				continue
			}
			ratings = append(ratings, dataset.Rating{User: u, Item: i, Score: 5})
		}
	}
	for u := 6; u < 12; u++ {
		for i := 6; i < 12; i++ {
			if (u+i)%3 == 0 {
				continue
			}
			ratings = append(ratings, dataset.Rating{User: u, Item: i, Score: 5})
		}
	}
	ratings = append(ratings, dataset.Rating{User: 0, Item: 6, Score: 1})
	d, err := dataset.New(12, 12, ratings)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPerplexityTrainedBeatsRandom(t *testing.T) {
	d := genreDataset(t)
	trained, err := Train(d, Config{NumTopics: 2, Iterations: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	random, err := RandomModel(d.NumUsers(), d.NumItems(), Config{NumTopics: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pt := trained.Perplexity(d)
	pr := random.Perplexity(d)
	if math.IsNaN(pt) || math.IsInf(pt, 0) || pt <= 0 {
		t.Fatalf("trained perplexity %v", pt)
	}
	if pt >= pr {
		t.Fatalf("trained perplexity %.2f not below random %.2f", pt, pr)
	}
	// Two clean 6-item communities: a good 2-topic model approaches
	// per-community uniformity (~6), far below catalog uniformity (12).
	if pt > 10 {
		t.Fatalf("trained perplexity %.2f suspiciously close to uniform (12)", pt)
	}
}

func TestPerplexityEmptyDataset(t *testing.T) {
	d := genreDataset(t)
	m, err := Train(d, Config{NumTopics: 2, Iterations: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	empty, err := dataset.New(12, 12, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p := m.Perplexity(empty); !math.IsInf(p, 1) {
		t.Fatalf("perplexity of empty corpus %v, want +Inf", p)
	}
}

func TestTraceRecordsImprovement(t *testing.T) {
	d := genreDataset(t)
	m, err := Train(d, Config{NumTopics: 2, Iterations: 30, Seed: 5, TraceEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	tr := m.Trace()
	if len(tr) != 6 {
		t.Fatalf("trace length %d, want 6 (every 5 of 30)", len(tr))
	}
	for i, p := range tr {
		if p.Iteration != (i+1)*5 {
			t.Fatalf("checkpoint %d at iteration %d", i, p.Iteration)
		}
		if math.IsNaN(p.LogLikelihood) || p.LogLikelihood > 0 {
			t.Fatalf("checkpoint %d LL %v", i, p.LogLikelihood)
		}
	}
	if last, first := tr[len(tr)-1].LogLikelihood, tr[0].LogLikelihood; last < first-1e-9 {
		// Gibbs LL is stochastic but on this trivially separable corpus it
		// must not end below where it started.
		t.Fatalf("log-likelihood regressed: %.2f -> %.2f", first, last)
	}
	// The final checkpoint must agree with the returned model.
	if got := m.LogLikelihood(d); math.Abs(got-tr[len(tr)-1].LogLikelihood) > 1e-9 {
		t.Fatalf("final checkpoint %.4f != model LL %.4f", tr[len(tr)-1].LogLikelihood, got)
	}
}

func TestTraceFinalIterationAlwaysRecorded(t *testing.T) {
	d := genreDataset(t)
	// 7 iterations with TraceEvery 3 → checkpoints at 3, 6, 7.
	m, err := Train(d, Config{NumTopics: 2, Iterations: 7, Seed: 2, TraceEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	tr := m.Trace()
	if len(tr) != 3 || tr[2].Iteration != 7 {
		t.Fatalf("trace %+v", tr)
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	d := genreDataset(t)
	m, err := Train(d, Config{NumTopics: 2, Iterations: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Trace()) != 0 {
		t.Fatalf("unexpected trace %+v", m.Trace())
	}
}

func TestTopicCoherenceValidation(t *testing.T) {
	d := genreDataset(t)
	m, err := Train(d, Config{NumTopics: 2, Iterations: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.TopicCoherence(nil, 5); err == nil {
		t.Fatal("nil dataset accepted")
	}
	if _, err := m.TopicCoherence(d, 1); err == nil {
		t.Fatal("topN=1 accepted")
	}
	other, err := dataset.New(3, 3, []dataset.Rating{{User: 0, Item: 0, Score: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.TopicCoherence(other, 3); err == nil {
		t.Fatal("mismatched dataset accepted")
	}
}

func TestTopicCoherenceSeparatesTrainedFromRandom(t *testing.T) {
	d := genreDataset(t)
	trained, err := Train(d, Config{NumTopics: 2, Iterations: 40, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	random, err := RandomModel(d.NumUsers(), d.NumItems(), Config{NumTopics: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ct, err := trained.MeanCoherence(d, 5)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := random.MeanCoherence(d, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Trained topics group co-rated items, so their top items co-occur and
	// coherence sits near zero; random topics mix the two communities.
	if ct <= cr {
		t.Fatalf("trained coherence %.2f not above random %.2f", ct, cr)
	}
	cs, err := trained.TopicCoherence(d, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 {
		t.Fatalf("topics %d", len(cs))
	}
	for z, c := range cs {
		if c > 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			t.Fatalf("topic %d coherence %v (UMass must be <= 0 and finite)", z, c)
		}
	}
}

func TestInferUserRecoverCommunity(t *testing.T) {
	d := genreDataset(t)
	m, err := Train(d, Config{NumTopics: 2, Iterations: 40, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	// Identify which topic owns the first community by a training user.
	trainTheta := m.Theta(1) // user 1 rates only items 0..5
	topicA := 0
	if trainTheta[1] > trainTheta[0] {
		topicA = 1
	}
	// A new user who loves the same community must land on the same topic.
	newUser := []dataset.Rating{
		{Item: 0, Score: 5}, {Item: 2, Score: 4}, {Item: 4, Score: 5},
	}
	theta, err := m.InferUser(newUser, 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(theta) != 2 {
		t.Fatalf("theta %v", theta)
	}
	total := 0.0
	for _, p := range theta {
		if p < 0 || p > 1 {
			t.Fatalf("theta %v", theta)
		}
		total += p
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("theta sums to %v", total)
	}
	if theta[topicA] < 0.6 {
		t.Fatalf("new community-A user got theta %v (topic A = %d)", theta, topicA)
	}
	// A user from the other community lands on the other topic.
	other, err := m.InferUser([]dataset.Rating{
		{Item: 7, Score: 5}, {Item: 9, Score: 5}, {Item: 11, Score: 4},
	}, 30, 6)
	if err != nil {
		t.Fatal(err)
	}
	if other[topicA] > 0.4 {
		t.Fatalf("community-B user got theta %v (topic A = %d)", other, topicA)
	}
}

func TestInferUserEdgeCases(t *testing.T) {
	d := genreDataset(t)
	m, err := Train(d, Config{NumTopics: 3, Iterations: 10, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	// Empty history: the prior mean (uniform for a symmetric prior).
	theta, err := m.InferUser(nil, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range theta {
		if math.Abs(p-1.0/3) > 1e-12 {
			t.Fatalf("empty-history theta %v, want uniform", theta)
		}
	}
	// Out-of-range item: error, not panic.
	if _, err := m.InferUser([]dataset.Rating{{Item: 99, Score: 5}}, 10, 1); err == nil {
		t.Fatal("out-of-range item accepted")
	}
	// iters <= 0 falls back to a sane default and still works.
	if _, err := m.InferUser([]dataset.Rating{{Item: 0, Score: 4}}, 0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestInferUserDeterministic(t *testing.T) {
	d := genreDataset(t)
	m, err := Train(d, Config{NumTopics: 2, Iterations: 15, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	rs := []dataset.Rating{{Item: 1, Score: 5}, {Item: 3, Score: 4}}
	a, err := m.InferUser(rs, 25, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.InferUser(rs, 25, 9)
	if err != nil {
		t.Fatal(err)
	}
	for z := range a {
		if a[z] != b[z] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
}
