// Model-quality diagnostics (held-out perplexity, UMass topic coherence)
// and new-user fold-in. The paper validates its LDA variant qualitatively
// (Table 1's interpretable genre topics); the diagnostics give the same
// check a number, and InferUser extends the trained topic space to users
// who arrived after training.

package lda

import (
	"fmt"
	"math"
	"math/rand"

	"longtailrec/internal/dataset"
)

// Perplexity returns exp(−LL/N) of the dataset under the model's point
// estimates, where N is the token count (ratings weighted by rounded
// score, the same expansion Train uses). Lower is better; a model that
// assigned uniform probability to every item would score ~NumItems.
func (m *Model) Perplexity(d *dataset.Dataset) float64 {
	tokens := 0.0
	for _, r := range d.Ratings() {
		mult := math.Round(r.Score)
		if mult < 1 {
			mult = 1
		}
		tokens += mult
	}
	if tokens == 0 {
		return math.Inf(1)
	}
	return math.Exp(-m.LogLikelihood(d) / tokens)
}

// TopicCoherence scores every topic with the UMass measure over the
// dataset's user "documents":
//
//	C(z) = Σ_{m=2..topN} Σ_{l=1..m-1} log( (D(i_m, i_l) + 1) / D(i_l) )
//
// where i_1..i_topN are the topic's top items, D(i) counts users who rated
// i, and D(i, j) counts users who rated both. Closer to zero is more
// coherent: a topic whose top items are always rated together scores ~0,
// one whose top items never co-occur scores very negative. Items never
// rated in d contribute the worst case via a 1-smoothed denominator.
func (m *Model) TopicCoherence(d *dataset.Dataset, topN int) ([]float64, error) {
	if d == nil {
		return nil, fmt.Errorf("lda: nil dataset")
	}
	if d.NumItems() != m.numItems {
		return nil, fmt.Errorf("lda: dataset has %d items, model %d", d.NumItems(), m.numItems)
	}
	if topN < 2 {
		return nil, fmt.Errorf("lda: coherence needs topN >= 2, got %d", topN)
	}
	out := make([]float64, m.numTopics)
	for z := 0; z < m.numTopics; z++ {
		top := m.TopItems(z, topN)
		c := 0.0
		for a := 1; a < len(top); a++ {
			raters := make(map[int]struct{})
			for _, r := range d.ItemRatings(top[a].Item) {
				raters[r.User] = struct{}{}
			}
			for b := 0; b < a; b++ {
				di := len(d.ItemRatings(top[b].Item))
				if di == 0 {
					di = 1 // smoothed: an unrated conditioning item
				}
				co := 0
				for _, r := range d.ItemRatings(top[b].Item) {
					if _, ok := raters[r.User]; ok {
						co++
					}
				}
				c += math.Log(float64(co+1) / float64(di))
			}
		}
		out[z] = c
	}
	return out, nil
}

// InferUser folds a user unseen at training time into the topic space:
// Gibbs-sample topic assignments for their rating tokens with φ held
// fixed, then return the point estimate of θ. This is what lets AC2-style
// entropy and LDA scoring serve new users without retraining the corpus
// model. Ratings are expanded by rounded score exactly as Train does.
func (m *Model) InferUser(ratings []dataset.Rating, iters int, seed int64) ([]float64, error) {
	if iters <= 0 {
		iters = 20
	}
	k := m.numTopics
	// Expand into tokens.
	var items []int
	for _, r := range ratings {
		if r.Item < 0 || r.Item >= m.numItems {
			return nil, fmt.Errorf("lda: InferUser item %d out of range [0,%d)", r.Item, m.numItems)
		}
		mult := int(math.Round(r.Score))
		if mult < 1 {
			mult = 1
		}
		for c := 0; c < mult; c++ {
			items = append(items, r.Item)
		}
	}
	theta := make([]float64, k)
	if len(items) == 0 {
		// No evidence: the symmetric prior mean.
		for z := range theta {
			theta[z] = 1 / float64(k)
		}
		return theta, nil
	}
	rng := rand.New(rand.NewSource(seed))
	assign := make([]int, len(items))
	counts := make([]int, k)
	for t := range items {
		z := rng.Intn(k)
		assign[t] = z
		counts[z]++
	}
	probs := make([]float64, k)
	for iter := 0; iter < iters; iter++ {
		for t, item := range items {
			counts[assign[t]]--
			total := 0.0
			for z := 0; z < k; z++ {
				p := m.phi[z][item] * (float64(counts[z]) + m.alpha)
				probs[z] = p
				total += p
			}
			u := rng.Float64() * total
			acc := 0.0
			zNew := k - 1
			for z := 0; z < k; z++ {
				acc += probs[z]
				if u < acc {
					zNew = z
					break
				}
			}
			assign[t] = zNew
			counts[zNew]++
		}
	}
	denom := float64(len(items)) + float64(k)*m.alpha
	for z := 0; z < k; z++ {
		theta[z] = (float64(counts[z]) + m.alpha) / denom
	}
	return theta, nil
}

// MeanCoherence averages TopicCoherence across topics — the single-number
// model-quality view.
func (m *Model) MeanCoherence(d *dataset.Dataset, topN int) (float64, error) {
	cs, err := m.TopicCoherence(d, topN)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, c := range cs {
		total += c
	}
	return total / float64(len(cs)), nil
}
