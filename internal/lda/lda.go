// Package lda implements the paper's LDA variant for rating data
// (§4.2.3, Algorithm 2): each user is a document whose "words" are the
// items they rated, with the rating score w(u,i) acting as the term
// frequency — a rating of 4 contributes four tokens of that item. The
// model is trained by collapsed Gibbs sampling (Eq. 12) and exposes the
// per-user topic distribution θ (Eq. 14), the per-topic item distribution
// φ (Eq. 13), the topic-based user entropy of Eq. 11, and the
// score(u,i) = Σ_z θ_uz·φ_zi ranking used by the LDA recommender baseline.
package lda

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"longtailrec/internal/dataset"
)

// Config collects the LDA hyper-parameters. The paper's defaults are
// α = 50/K and β = 0.1 (§5.2).
type Config struct {
	NumTopics  int     // K; required, must be >= 1
	Alpha      float64 // Dirichlet prior on θ; <= 0 means 50/K
	Beta       float64 // Dirichlet prior on φ; <= 0 means 0.1
	Iterations int     // Gibbs sweeps; <= 0 means 100
	Seed       int64   // RNG seed for reproducibility
	// TraceEvery, when > 0, records the training-corpus log-likelihood
	// every TraceEvery sweeps (plus after the final sweep) into the
	// model's Trace — a convergence diagnostic costing one extra point
	// estimation per checkpoint.
	TraceEvery int
}

func (c Config) withDefaults() Config {
	if c.Alpha <= 0 {
		c.Alpha = 50 / float64(c.NumTopics)
	}
	if c.Beta <= 0 {
		c.Beta = 0.1
	}
	if c.Iterations <= 0 {
		c.Iterations = 100
	}
	return c
}

// Model is a trained topic model over a rating corpus.
type Model struct {
	numTopics, numUsers, numItems int
	alpha, beta                   float64
	theta                         [][]float64 // numUsers × K
	phi                           [][]float64 // K × numItems
	trace                         []TracePoint
}

// TracePoint is one convergence checkpoint of Gibbs training.
type TracePoint struct {
	Iteration     int // 1-based sweep count at the checkpoint
	LogLikelihood float64
}

// token is one (user, item) occurrence in the expanded corpus.
type token struct {
	user, item int
	topic      int
}

// Train fits the model on the dataset with collapsed Gibbs sampling.
// Rating scores are rounded to the nearest positive integer to form token
// multiplicities, exactly as Algorithm 2 repeats the draw w(u,i) times.
func Train(d *dataset.Dataset, cfg Config) (*Model, error) {
	if cfg.NumTopics < 1 {
		return nil, fmt.Errorf("lda: NumTopics %d, need >= 1", cfg.NumTopics)
	}
	cfg = cfg.withDefaults()
	k := cfg.NumTopics
	nu, ni := d.NumUsers(), d.NumItems()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Expand ratings into tokens.
	var tokens []token
	for _, r := range d.Ratings() {
		mult := int(math.Round(r.Score))
		if mult < 1 {
			mult = 1
		}
		for c := 0; c < mult; c++ {
			tokens = append(tokens, token{user: r.User, item: r.Item})
		}
	}
	if len(tokens) == 0 {
		return nil, fmt.Errorf("lda: empty corpus")
	}

	// Count matrices (N1..N4 of Algorithm 2).
	nTopicItem := make([][]int, k) // n^{item}_z
	for z := range nTopicItem {
		nTopicItem[z] = make([]int, ni)
	}
	nUserTopic := make([][]int, nu) // n^{u}_z
	for u := range nUserTopic {
		nUserTopic[u] = make([]int, k)
	}
	nTopic := make([]int, k) // n^{•}_z
	nUser := make([]int, nu) // n^{u}_•

	// Random initialization (Algorithm 2 line 2).
	for t := range tokens {
		z := rng.Intn(k)
		tokens[t].topic = z
		nTopicItem[z][tokens[t].item]++
		nUserTopic[tokens[t].user][z]++
		nTopic[z]++
		nUser[tokens[t].user]++
	}

	alpha, beta := cfg.Alpha, cfg.Beta
	niBeta := float64(ni) * beta
	probs := make([]float64, k)
	var trace []TracePoint
	for iter := 0; iter < cfg.Iterations; iter++ {
		for t := range tokens {
			tok := &tokens[t]
			z := tok.topic
			// Remove the current assignment from the counts.
			nTopicItem[z][tok.item]--
			nUserTopic[tok.user][z]--
			nTopic[z]--
			nUser[tok.user]--
			// Eq. 12 (the user-side denominator is constant across z and
			// cancels in normalization, but we keep the full expression for
			// fidelity to Algorithm 2 line 10).
			total := 0.0
			for zz := 0; zz < k; zz++ {
				p := (float64(nTopicItem[zz][tok.item]) + beta) /
					(float64(nTopic[zz]) + niBeta) *
					(float64(nUserTopic[tok.user][zz]) + alpha)
				probs[zz] = p
				total += p
			}
			u := rng.Float64() * total
			acc := 0.0
			zNew := k - 1
			for zz := 0; zz < k; zz++ {
				acc += probs[zz]
				if u < acc {
					zNew = zz
					break
				}
			}
			tok.topic = zNew
			nTopicItem[zNew][tok.item]++
			nUserTopic[tok.user][zNew]++
			nTopic[zNew]++
			nUser[tok.user]++
		}
		if cfg.TraceEvery > 0 && ((iter+1)%cfg.TraceEvery == 0 || iter == cfg.Iterations-1) {
			snap := estimate(cfg, nu, ni, nUserTopic, nTopicItem, nTopic, nUser)
			trace = append(trace, TracePoint{Iteration: iter + 1, LogLikelihood: snap.LogLikelihood(d)})
		}
	}

	m := estimate(cfg, nu, ni, nUserTopic, nTopicItem, nTopic, nUser)
	m.trace = trace
	return m, nil
}

// estimate computes the point estimates of Eq. 13 and Eq. 14 from the
// current Gibbs count matrices.
func estimate(cfg Config, nu, ni int, nUserTopic, nTopicItem [][]int, nTopic, nUser []int) *Model {
	k := cfg.NumTopics
	alpha, beta := cfg.Alpha, cfg.Beta
	m := &Model{
		numTopics: k, numUsers: nu, numItems: ni,
		alpha: alpha, beta: beta,
		theta: make([][]float64, nu),
		phi:   make([][]float64, k),
	}
	ktAlpha := float64(k) * alpha
	niBeta := float64(ni) * beta
	for u := 0; u < nu; u++ {
		row := make([]float64, k)
		denom := float64(nUser[u]) + ktAlpha
		for z := 0; z < k; z++ {
			row[z] = (float64(nUserTopic[u][z]) + alpha) / denom
		}
		m.theta[u] = row
	}
	for z := 0; z < k; z++ {
		row := make([]float64, ni)
		denom := float64(nTopic[z]) + niBeta
		for i := 0; i < ni; i++ {
			row[i] = (float64(nTopicItem[z][i]) + beta) / denom
		}
		m.phi[z] = row
	}
	return m
}

// Trace returns the convergence checkpoints recorded during training
// (empty unless Config.TraceEvery was set).
func (m *Model) Trace() []TracePoint {
	out := make([]TracePoint, len(m.trace))
	copy(out, m.trace)
	return out
}

// NumTopics returns K.
func (m *Model) NumTopics() int { return m.numTopics }

// NumUsers returns the user-universe size.
func (m *Model) NumUsers() int { return m.numUsers }

// NumItems returns the item-universe size.
func (m *Model) NumItems() int { return m.numItems }

// Priors returns the Dirichlet hyper-parameters (α, β) the model was
// trained with.
func (m *Model) Priors() (alpha, beta float64) { return m.alpha, m.beta }

// Theta returns user u's topic distribution θ_u (aliases internal storage).
func (m *Model) Theta(u int) []float64 { return m.theta[u] }

// Phi returns topic z's item distribution φ_z (aliases internal storage).
func (m *Model) Phi(z int) []float64 { return m.phi[z] }

// Score predicts user u's affinity to item i: Σ_z θ_uz·φ_zi.
func (m *Model) Score(u, i int) float64 {
	th := m.theta[u]
	s := 0.0
	for z, t := range th {
		s += t * m.phi[z][i]
	}
	return s
}

// ScoreAll fills out[i] = Score(u, i) for every item, reusing out if it has
// the right length.
func (m *Model) ScoreAll(u int, out []float64) []float64 {
	if len(out) != m.numItems {
		out = make([]float64, m.numItems)
	}
	for i := range out {
		out[i] = 0
	}
	th := m.theta[u]
	for z, t := range th {
		if t == 0 {
			continue
		}
		row := m.phi[z]
		for i, p := range row {
			out[i] += t * p
		}
	}
	return out
}

// UserEntropy computes the topic-based user entropy of Eq. 11:
// E(u) = -Σ_z θ_uz·log θ_uz (natural log).
func (m *Model) UserEntropy(u int) float64 {
	e := 0.0
	for _, p := range m.theta[u] {
		if p > 0 {
			e -= p * math.Log(p)
		}
	}
	return e
}

// TopicItem pairs an item with its probability under a topic.
type TopicItem struct {
	Item int
	Prob float64
}

// TopItems returns topic z's n highest-probability items in descending
// order — the Table 1 view of the model.
func (m *Model) TopItems(z, n int) []TopicItem {
	row := m.phi[z]
	items := make([]TopicItem, len(row))
	for i, p := range row {
		items[i] = TopicItem{Item: i, Prob: p}
	}
	sort.Slice(items, func(a, b int) bool {
		if items[a].Prob != items[b].Prob {
			return items[a].Prob > items[b].Prob
		}
		return items[a].Item < items[b].Item
	})
	if n > len(items) {
		n = len(items)
	}
	return items[:n]
}

// LogLikelihood returns the corpus log-likelihood of the dataset under the
// trained point estimates: Σ_{u,i} round(w(u,i))·log Σ_z θ_uz·φ_zi.
// Used to verify Gibbs training actually improves fit over a random model.
func (m *Model) LogLikelihood(d *dataset.Dataset) float64 {
	ll := 0.0
	for _, r := range d.Ratings() {
		mult := math.Round(r.Score)
		if mult < 1 {
			mult = 1
		}
		p := m.Score(r.User, r.Item)
		if p <= 0 {
			p = 1e-300
		}
		ll += mult * math.Log(p)
	}
	return ll
}

// FromParameters reconstructs a model from point estimates — the loading
// half of model persistence. theta must be numUsers × K and phi K ×
// numItems with K ≥ 1; rows are copied. Hyper-parameters are metadata
// only (scoring needs just θ and φ).
func FromParameters(alpha, beta float64, theta, phi [][]float64) (*Model, error) {
	if len(phi) == 0 {
		return nil, fmt.Errorf("lda: FromParameters: empty phi")
	}
	k := len(phi)
	ni := len(phi[0])
	if ni == 0 {
		return nil, fmt.Errorf("lda: FromParameters: empty phi rows")
	}
	for z, row := range phi {
		if len(row) != ni {
			return nil, fmt.Errorf("lda: FromParameters: phi row %d has %d items, want %d", z, len(row), ni)
		}
	}
	if len(theta) == 0 {
		return nil, fmt.Errorf("lda: FromParameters: empty theta")
	}
	for u, row := range theta {
		if len(row) != k {
			return nil, fmt.Errorf("lda: FromParameters: theta row %d has %d topics, want %d", u, len(row), k)
		}
	}
	m := &Model{
		numTopics: k, numUsers: len(theta), numItems: ni,
		alpha: alpha, beta: beta,
		theta: make([][]float64, len(theta)),
		phi:   make([][]float64, k),
	}
	for u, row := range theta {
		m.theta[u] = append([]float64(nil), row...)
	}
	for z, row := range phi {
		m.phi[z] = append([]float64(nil), row...)
	}
	return m, nil
}

// RandomModel returns an untrained model with Dirichlet-random θ and φ —
// the null baseline for likelihood comparisons in tests.
func RandomModel(numUsers, numItems int, cfg Config) (*Model, error) {
	if cfg.NumTopics < 1 {
		return nil, fmt.Errorf("lda: NumTopics %d, need >= 1", cfg.NumTopics)
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{
		numTopics: cfg.NumTopics, numUsers: numUsers, numItems: numItems,
		alpha: cfg.Alpha, beta: cfg.Beta,
		theta: make([][]float64, numUsers),
		phi:   make([][]float64, cfg.NumTopics),
	}
	for u := range m.theta {
		m.theta[u] = dirichlet(rng, cfg.Alpha, cfg.NumTopics)
	}
	for z := range m.phi {
		m.phi[z] = dirichlet(rng, cfg.Beta+0.5, numItems)
	}
	return m, nil
}

// dirichlet draws a symmetric Dirichlet sample without importing randutil
// (avoiding a dependency cycle risk is not the issue — keeping lda
// self-contained for reuse is).
func dirichlet(rng *rand.Rand, alpha float64, k int) []float64 {
	out := make([]float64, k)
	total := 0.0
	for i := range out {
		// Marsaglia-Tsang via sum of exponentials is inadequate for
		// non-integer alpha; use the simple boost trick with Gamma(α+1).
		g := gammaDraw(rng, alpha)
		out[i] = g
		total += g
	}
	if total == 0 {
		out[rng.Intn(k)] = 1
		return out
	}
	for i := range out {
		out[i] /= total
	}
	return out
}

func gammaDraw(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaDraw(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
