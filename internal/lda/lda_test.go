package lda

import (
	"math"
	"math/rand"
	"testing"

	"longtailrec/internal/dataset"
)

// genreCorpus builds a corpus with two disjoint taste clusters: users
// 0..nu/2-1 rate only items 0..ni/2-1 ("animation"), the rest rate only
// items ni/2..ni-1 ("action"). A well-trained 2-topic model must separate
// them.
func genreCorpus(t testing.TB, nu, ni int, seed int64) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var ratings []dataset.Rating
	half := ni / 2
	for u := 0; u < nu; u++ {
		var lo, hi int
		if u < nu/2 {
			lo, hi = 0, half
		} else {
			lo, hi = half, ni
		}
		k := 4 + rng.Intn(4)
		seen := map[int]bool{}
		for n := 0; n < k; n++ {
			i := lo + rng.Intn(hi-lo)
			if seen[i] {
				continue
			}
			seen[i] = true
			ratings = append(ratings, dataset.Rating{User: u, Item: i, Score: float64(3 + rng.Intn(3))})
		}
	}
	d, err := dataset.New(nu, ni, ratings)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func trainedModel(t testing.TB, d *dataset.Dataset, k int) *Model {
	t.Helper()
	// The paper's default α = 50/K is tuned for corpora with hundreds of
	// tokens per user; on these tiny test corpora it over-smooths θ, so we
	// use a small explicit α.
	m, err := Train(d, Config{NumTopics: k, Alpha: 0.5, Beta: 0.1, Iterations: 60, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTrainValidation(t *testing.T) {
	d := genreCorpus(t, 10, 10, 1)
	if _, err := Train(d, Config{NumTopics: 0}); err == nil {
		t.Fatal("K=0 accepted")
	}
}

func TestDistributionsAreSimplex(t *testing.T) {
	d := genreCorpus(t, 20, 12, 2)
	m := trainedModel(t, d, 3)
	for u := 0; u < m.NumUsers(); u++ {
		sum := 0.0
		for _, p := range m.Theta(u) {
			if p < 0 {
				t.Fatalf("negative θ[%d]", u)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("θ[%d] sums to %v", u, sum)
		}
	}
	for z := 0; z < m.NumTopics(); z++ {
		sum := 0.0
		for _, p := range m.Phi(z) {
			if p < 0 {
				t.Fatalf("negative φ[%d]", z)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("φ[%d] sums to %v", z, sum)
		}
	}
}

func TestTopicsSeparateGenres(t *testing.T) {
	// The Table 1 behaviour: each topic's top items come from one genre.
	d := genreCorpus(t, 40, 20, 3)
	m := trainedModel(t, d, 2)
	half := 10
	for z := 0; z < 2; z++ {
		top := m.TopItems(z, 5)
		if len(top) != 5 {
			t.Fatalf("TopItems returned %d", len(top))
		}
		// Count which side of the catalog the top items come from.
		left := 0
		for _, ti := range top {
			if ti.Item < half {
				left++
			}
		}
		if left != 0 && left != 5 {
			t.Fatalf("topic %d mixes genres: %d/5 from left half", z, left)
		}
	}
	// The two topics must cover different genres.
	t0Left := m.TopItems(0, 5)[0].Item < half
	t1Left := m.TopItems(1, 5)[0].Item < half
	if t0Left == t1Left {
		t.Fatal("both topics captured the same genre")
	}
}

func TestThetaReflectsMembership(t *testing.T) {
	d := genreCorpus(t, 40, 20, 4)
	m := trainedModel(t, d, 2)
	// Identify which topic owns the left genre via φ mass.
	leftMass0 := 0.0
	for i := 0; i < 10; i++ {
		leftMass0 += m.Phi(0)[i]
	}
	leftTopic := 0
	if leftMass0 < 0.5 {
		leftTopic = 1
	}
	// Left-genre users must put most θ mass on the left topic.
	for u := 0; u < 20; u++ {
		if m.Theta(u)[leftTopic] < 0.6 {
			t.Fatalf("left user %d has θ_left = %v", u, m.Theta(u)[leftTopic])
		}
	}
	for u := 20; u < 40; u++ {
		if m.Theta(u)[leftTopic] > 0.4 {
			t.Fatalf("right user %d has θ_left = %v", u, m.Theta(u)[leftTopic])
		}
	}
}

func TestScoreMatchesThetaPhi(t *testing.T) {
	d := genreCorpus(t, 16, 10, 5)
	m := trainedModel(t, d, 3)
	for u := 0; u < 4; u++ {
		for i := 0; i < m.NumItems(); i++ {
			want := 0.0
			for z := 0; z < m.NumTopics(); z++ {
				want += m.Theta(u)[z] * m.Phi(z)[i]
			}
			if math.Abs(m.Score(u, i)-want) > 1e-12 {
				t.Fatalf("Score(%d,%d) = %v, want %v", u, i, m.Score(u, i), want)
			}
		}
	}
}

func TestScoreAll(t *testing.T) {
	d := genreCorpus(t, 16, 10, 6)
	m := trainedModel(t, d, 2)
	out := m.ScoreAll(3, nil)
	if len(out) != m.NumItems() {
		t.Fatalf("ScoreAll length %d", len(out))
	}
	for i, s := range out {
		if math.Abs(s-m.Score(3, i)) > 1e-12 {
			t.Fatalf("ScoreAll[%d] = %v vs Score %v", i, s, m.Score(3, i))
		}
	}
	// Reuse path.
	out2 := m.ScoreAll(4, out)
	if &out2[0] != &out[0] {
		t.Fatal("ScoreAll did not reuse the buffer")
	}
}

func TestScorePreferInGenre(t *testing.T) {
	d := genreCorpus(t, 40, 20, 7)
	m := trainedModel(t, d, 2)
	// A left-genre user must on average score unseen left items above
	// right items.
	u := 0
	rated := d.UserItemSet(u)
	var left, right float64
	var nl, nr int
	for i := 0; i < 20; i++ {
		if _, ok := rated[i]; ok {
			continue
		}
		if i < 10 {
			left += m.Score(u, i)
			nl++
		} else {
			right += m.Score(u, i)
			nr++
		}
	}
	if nl == 0 || nr == 0 {
		t.Skip("degenerate corpus draw")
	}
	if left/float64(nl) <= right/float64(nr) {
		t.Fatalf("in-genre mean score %v not above out-genre %v", left/float64(nl), right/float64(nr))
	}
}

func TestUserEntropyRange(t *testing.T) {
	d := genreCorpus(t, 30, 16, 8)
	k := 4
	m := trainedModel(t, d, k)
	maxE := math.Log(float64(k))
	for u := 0; u < m.NumUsers(); u++ {
		e := m.UserEntropy(u)
		if e < 0 || e > maxE+1e-9 {
			t.Fatalf("entropy %v out of [0, %v]", e, maxE)
		}
	}
}

func TestSpecificUserHasLowerEntropy(t *testing.T) {
	// A user spread over both genres must have higher topic entropy than a
	// single-genre user (the §4.2 intuition).
	rng := rand.New(rand.NewSource(9))
	var ratings []dataset.Rating
	// 20 single-genre users on each side.
	for u := 0; u < 20; u++ {
		for _, i := range rng.Perm(10)[:5] {
			ratings = append(ratings, dataset.Rating{User: u, Item: i, Score: 5})
		}
	}
	for u := 20; u < 40; u++ {
		for _, i := range rng.Perm(10)[:5] {
			ratings = append(ratings, dataset.Rating{User: u, Item: 10 + i, Score: 5})
		}
	}
	// One generalist rating both genres heavily.
	for _, i := range rng.Perm(10)[:5] {
		ratings = append(ratings, dataset.Rating{User: 40, Item: i, Score: 5})
	}
	for _, i := range rng.Perm(10)[:5] {
		ratings = append(ratings, dataset.Rating{User: 40, Item: 10 + i, Score: 5})
	}
	d, err := dataset.New(41, 20, ratings)
	if err != nil {
		t.Fatal(err)
	}
	m := trainedModel(t, d, 2)
	gen := m.UserEntropy(40)
	for u := 0; u < 40; u++ {
		if m.UserEntropy(u) >= gen {
			t.Fatalf("specific user %d entropy %v >= generalist %v", u, m.UserEntropy(u), gen)
		}
	}
}

func TestTrainingImprovesLikelihood(t *testing.T) {
	d := genreCorpus(t, 30, 20, 10)
	cfg := Config{NumTopics: 2, Iterations: 60, Seed: 11}
	trained, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	random, err := RandomModel(d.NumUsers(), d.NumItems(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if trained.LogLikelihood(d) <= random.LogLikelihood(d) {
		t.Fatalf("training did not improve likelihood: %v vs %v",
			trained.LogLikelihood(d), random.LogLikelihood(d))
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	d := genreCorpus(t, 20, 12, 12)
	cfg := Config{NumTopics: 2, Iterations: 20, Seed: 99}
	m1, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < d.NumUsers(); u++ {
		for z := 0; z < 2; z++ {
			if m1.Theta(u)[z] != m2.Theta(u)[z] {
				t.Fatal("same seed produced different models")
			}
		}
	}
}

func TestTopItemsOrdering(t *testing.T) {
	d := genreCorpus(t, 20, 12, 13)
	m := trainedModel(t, d, 2)
	top := m.TopItems(0, 12)
	for k := 1; k < len(top); k++ {
		if top[k].Prob > top[k-1].Prob {
			t.Fatal("TopItems not descending")
		}
	}
	if over := m.TopItems(0, 100); len(over) != 12 {
		t.Fatalf("TopItems clamped to %d", len(over))
	}
}
