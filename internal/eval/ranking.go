package eval

import (
	"fmt"
	"math"
	"math/rand"

	"longtailrec/internal/core"
	"longtailrec/internal/dataset"
	"longtailrec/internal/randutil"
)

// RankingResult carries the rank-sensitive summary statistics of the
// Recall@N protocol for one algorithm: beyond the paper's hit-based
// recall, MRR and NDCG weigh *where* in the list the held-out long-tail
// item lands — extensions the later literature reports on the same
// protocol.
type RankingResult struct {
	Name string
	// MRR is the mean reciprocal rank of the test item among the
	// candidates (0 contribution when unscored or ranked out).
	MRR float64
	// NDCG is the mean 1/log2(1+rank) gain, the binary-relevance NDCG of
	// a protocol with a single relevant item per case.
	NDCG float64
	// MeanRank averages the raw rank over scored cases (lower is better).
	MeanRank float64
	// Scored counts test cases where the algorithm assigned the target a
	// finite score.
	Scored int
	// Cases is the total number of test cases.
	Cases int
}

// RankingMetrics runs the §5.2.1 candidate-ranking protocol and reports
// MRR, NDCG and mean rank per algorithm. Sampling mirrors Recall exactly
// (same seed → same candidate sets), so the two views are comparable.
func RankingMetrics(recs []core.Recommender, train *dataset.Dataset, test []dataset.Rating, opts RecallOptions) ([]RankingResult, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("eval: no recommenders")
	}
	if len(test) == 0 {
		return nil, fmt.Errorf("eval: empty test set")
	}
	opts = opts.withDefaults()
	if train.NumItems() <= opts.NumNegatives {
		return nil, fmt.Errorf("eval: catalog of %d items cannot supply %d negatives", train.NumItems(), opts.NumNegatives)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	candidates := make([][]int, len(test))
	for t, r := range test {
		excl := make(map[int]struct{})
		for i := range train.UserItemSet(r.User) {
			excl[i] = struct{}{}
		}
		excl[r.Item] = struct{}{}
		n := opts.NumNegatives
		if avail := train.NumItems() - len(excl); avail < n {
			n = avail
		}
		negs := randutil.SampleExcluding(rng, train.NumItems(), n, excl)
		candidates[t] = append(negs, r.Item)
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = 1
	}
	if workers > len(test) {
		workers = len(test)
	}
	out := make([]RankingResult, 0, len(recs))
	for _, rec := range recs {
		ranks, err := caseRanks(rec, test, candidates, workers)
		if err != nil {
			return nil, err
		}
		res := RankingResult{Name: rec.Name(), Cases: len(test)}
		rankSum := 0.0
		for _, rank := range ranks {
			if rank == 0 {
				continue // unscored target
			}
			res.Scored++
			res.MRR += 1 / float64(rank)
			res.NDCG += 1 / math.Log2(1+float64(rank))
			rankSum += float64(rank)
		}
		if len(test) > 0 {
			res.MRR /= float64(len(test))
			res.NDCG /= float64(len(test))
		}
		if res.Scored > 0 {
			res.MeanRank = rankSum / float64(res.Scored)
		}
		out = append(out, res)
	}
	return out, nil
}
