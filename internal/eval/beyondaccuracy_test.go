package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"longtailrec/internal/core"
)

func TestMeasureBeyondAccuracyValidation(t *testing.T) {
	w := testWorld(t, 61)
	users, err := w.Data.SampleUsers(rand.New(rand.NewSource(1)), 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MeasureBeyondAccuracy(nil, w.Data, users, BeyondAccuracyOptions{}); err == nil {
		t.Fatal("no recommenders accepted")
	}
	rec := popularityRecommender(t, w.Data)
	if _, err := MeasureBeyondAccuracy([]core.Recommender{rec}, w.Data, nil, BeyondAccuracyOptions{}); err == nil {
		t.Fatal("empty panel accepted")
	}
}

func TestBeyondAccuracySeparatesHeadAndTail(t *testing.T) {
	w := testWorld(t, 62)
	users, err := w.Data.SampleUsers(rand.New(rand.NewSource(2)), 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	recs := []core.Recommender{
		popularityRecommender(t, w.Data),
		antiPopularityRecommender(t, w.Data),
	}
	out, err := MeasureBeyondAccuracy(recs, w.Data, users, BeyondAccuracyOptions{Ontology: w.Ontology})
	if err != nil {
		t.Fatal(err)
	}
	popM, tailM := out[0], out[1]
	if popM.Name != "Pop" || tailM.Name != "AntiPop" {
		t.Fatalf("order changed: %q, %q", popM.Name, tailM.Name)
	}
	// The tail-pusher must be strictly more novel and more cold-start
	// heavy than the head-pusher.
	if tailM.Novelty <= popM.Novelty {
		t.Fatalf("novelty: tail %.2f <= head %.2f", tailM.Novelty, popM.Novelty)
	}
	if tailM.ColdStartShare < popM.ColdStartShare {
		t.Fatalf("cold-start: tail %.2f < head %.2f", tailM.ColdStartShare, popM.ColdStartShare)
	}
}

func TestBeyondAccuracyCoverageSeparation(t *testing.T) {
	w := testWorld(t, 67)
	users, err := w.Data.SampleUsers(rand.New(rand.NewSource(6)), 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	// The head-pusher recommends the same blockbusters to everyone; a
	// per-user random scorer disperses across the catalog.
	recs := []core.Recommender{
		popularityRecommender(t, w.Data),
		randomRecommender(t, w.Data, 11),
	}
	out, err := MeasureBeyondAccuracy(recs, w.Data, users, BeyondAccuracyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Coverage >= out[1].Coverage {
		t.Fatalf("coverage: head %.3f >= random %.3f", out[0].Coverage, out[1].Coverage)
	}
}

func TestBeyondAccuracyBounds(t *testing.T) {
	w := testWorld(t, 63)
	users, err := w.Data.SampleUsers(rand.New(rand.NewSource(3)), 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	recs := []core.Recommender{
		popularityRecommender(t, w.Data),
		randomRecommender(t, w.Data, 5),
	}
	out, err := MeasureBeyondAccuracy(recs, w.Data, users, BeyondAccuracyOptions{Ontology: w.Ontology})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range out {
		if m.Novelty < 0 {
			t.Fatalf("%s: negative novelty %v", m.Name, m.Novelty)
		}
		if m.Serendipity < 0 || m.Serendipity > 1 {
			t.Fatalf("%s: serendipity %v outside [0,1]", m.Name, m.Serendipity)
		}
		if m.IntraListSimilarity < 0 || m.IntraListSimilarity > 1 {
			t.Fatalf("%s: ILS %v outside [0,1]", m.Name, m.IntraListSimilarity)
		}
		if m.Coverage <= 0 || m.Coverage > 1 {
			t.Fatalf("%s: coverage %v outside (0,1]", m.Name, m.Coverage)
		}
		if m.ColdStartShare < 0 || m.ColdStartShare > 1 {
			t.Fatalf("%s: cold-start share %v outside [0,1]", m.Name, m.ColdStartShare)
		}
		if m.UsersServed != len(users) {
			t.Fatalf("%s: served %d of %d users", m.Name, m.UsersServed, len(users))
		}
	}
}

func TestBeyondAccuracyWithoutOntology(t *testing.T) {
	w := testWorld(t, 64)
	users, err := w.Data.SampleUsers(rand.New(rand.NewSource(4)), 15, 5)
	if err != nil {
		t.Fatal(err)
	}
	out, err := MeasureBeyondAccuracy([]core.Recommender{popularityRecommender(t, w.Data)},
		w.Data, users, BeyondAccuracyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].IntraListSimilarity != 0 {
		t.Fatalf("ILS %v without ontology", out[0].IntraListSimilarity)
	}
	// Serendipity degrades to pure unexpectedness, still in [0,1].
	if out[0].Serendipity < 0 || out[0].Serendipity > 1 {
		t.Fatalf("serendipity %v", out[0].Serendipity)
	}
}

func TestBeyondAccuracyErrorPropagation(t *testing.T) {
	w := testWorld(t, 65)
	users, err := w.Data.SampleUsers(rand.New(rand.NewSource(5)), 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	failing, err := core.NewFuncRecommender("Boom", w.Data.Graph(), func(u int) ([]float64, error) {
		return nil, errScoring
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MeasureBeyondAccuracy([]core.Recommender{failing}, w.Data, users, BeyondAccuracyOptions{}); err == nil {
		t.Fatal("scoring error swallowed")
	}
}

func TestSelfInformation(t *testing.T) {
	// An item rated by every user carries zero bits.
	if got := selfInformation(100, 100); got != 0 {
		t.Fatalf("universal item: %v bits", got)
	}
	// Halving popularity adds one bit.
	if got := selfInformation(50, 100); math.Abs(got-1) > 1e-12 {
		t.Fatalf("half-popular item: %v bits", got)
	}
	// Zero popularity is clamped to 1 rating, not infinite.
	if got := selfInformation(0, 100); math.IsInf(got, 1) || got <= 0 {
		t.Fatalf("unrated item: %v bits", got)
	}
	// Popularity above the user count clamps at zero bits.
	if got := selfInformation(500, 100); got != 0 {
		t.Fatalf("over-popular item: %v bits", got)
	}
}

func TestSelfInformationMonotone(t *testing.T) {
	// Property: novelty is non-increasing in popularity.
	f := func(a, b uint16) bool {
		pa, pb := int(a%1000)+1, int(b%1000)+1
		if pa > pb {
			pa, pb = pb, pa
		}
		return selfInformation(pa, 1000) >= selfInformation(pb, 1000)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntraListSimilarityDegenerate(t *testing.T) {
	w := testWorld(t, 66)
	if got := intraListSimilarity(w.Ontology, []int{3}); got != 0 {
		t.Fatalf("single-item list ILS %v", got)
	}
	// A list of one item repeated is maximally self-similar.
	if got := intraListSimilarity(w.Ontology, []int{3, 3, 3}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("identical-items ILS %v, want 1", got)
	}
}
