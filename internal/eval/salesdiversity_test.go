package eval

import (
	"math"
	"math/rand"
	"testing"

	"longtailrec/internal/core"
)

func TestGiniCoefficient(t *testing.T) {
	// Perfectly even exposure → 0.
	if g := giniCoefficient([]int{5, 5, 5, 5}); math.Abs(g) > 1e-12 {
		t.Fatalf("even Gini %v", g)
	}
	// All exposure on one of n items → (n-1)/n.
	if g := giniCoefficient([]int{0, 0, 0, 12}); math.Abs(g-0.75) > 1e-12 {
		t.Fatalf("concentrated Gini %v, want 0.75", g)
	}
	// Empty and zero vectors.
	if giniCoefficient(nil) != 0 || giniCoefficient([]int{0, 0}) != 0 {
		t.Fatal("degenerate Gini nonzero")
	}
	// Known small case: [1, 3] → G = 0.25.
	if g := giniCoefficient([]int{1, 3}); math.Abs(g-0.25) > 1e-12 {
		t.Fatalf("Gini([1,3]) = %v", g)
	}
}

func TestGiniScaleInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(30)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(20)
			b[i] = a[i] * 3
		}
		if math.Abs(giniCoefficient(a)-giniCoefficient(b)) > 1e-12 {
			t.Fatal("Gini not scale invariant")
		}
	}
}

func TestGiniBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(40)
		counts := make([]int, n)
		for i := range counts {
			counts[i] = rng.Intn(50)
		}
		g := giniCoefficient(counts)
		if g < -1e-12 || g > 1 {
			t.Fatalf("Gini %v out of [0,1] for %v", g, counts)
		}
	}
}

func TestMeasureSalesDiversity(t *testing.T) {
	w := testWorld(t, 11)
	d := w.Data
	users, err := d.SampleUsers(rand.New(rand.NewSource(3)), 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	recs := []core.Recommender{
		popularityRecommender(t, d), // same head list for everyone
		randomRecommender(t, d, 5),  // personalized spread
	}
	res, err := MeasureSalesDiversity(recs, d, users, 10)
	if err != nil {
		t.Fatal(err)
	}
	pop, rnd := res[0], res[1]
	if pop.Gini <= rnd.Gini {
		t.Fatalf("popularity pusher Gini %v should exceed random %v", pop.Gini, rnd.Gini)
	}
	if pop.Coverage >= rnd.Coverage {
		t.Fatalf("popularity pusher coverage %v should be below random %v", pop.Coverage, rnd.Coverage)
	}
	if rnd.TailShare <= pop.TailShare {
		t.Fatalf("random tail share %v should exceed popularity pusher %v", rnd.TailShare, pop.TailShare)
	}
	for _, r := range res {
		if r.Gini < 0 || r.Gini > 1 || r.Coverage < 0 || r.Coverage > 1 || r.TailShare < 0 || r.TailShare > 1 {
			t.Fatalf("%s metrics out of range: %+v", r.Name, r)
		}
		if r.Slots != 30*10 {
			t.Fatalf("%s slots %d", r.Name, r.Slots)
		}
	}
}

func TestMeasureSalesDiversityValidation(t *testing.T) {
	w := testWorld(t, 12)
	rec := constantRecommender(t, w.Data)
	if _, err := MeasureSalesDiversity(nil, w.Data, []int{0}, 10); err == nil {
		t.Fatal("no recommenders accepted")
	}
	if _, err := MeasureSalesDiversity([]core.Recommender{rec}, w.Data, nil, 10); err == nil {
		t.Fatal("empty panel accepted")
	}
}
