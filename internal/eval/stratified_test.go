package eval

import (
	"math"
	"testing"

	"longtailrec/internal/core"
)

func TestStratifiedRecallValidation(t *testing.T) {
	w := testWorld(t, 71)
	split := splitWorld(t, w, 20)
	rec := oracleRecommender(t, split.Train, split.Test)
	opts := RecallOptions{NumNegatives: 50, MaxN: 20, Seed: 1}
	if _, err := StratifiedRecall([]core.Recommender{rec}, split.Train, split.Test, nil, opts); err == nil {
		t.Fatal("no bounds accepted")
	}
	if _, err := StratifiedRecall([]core.Recommender{rec}, split.Train, split.Test, []int{10, 10}, opts); err == nil {
		t.Fatal("non-ascending bounds accepted")
	}
	if _, err := StratifiedRecall(nil, split.Train, split.Test, []int{10}, opts); err == nil {
		t.Fatal("no recommenders accepted")
	}
}

func TestStratifiedRecallPartitionsCases(t *testing.T) {
	w := testWorld(t, 72)
	split := splitWorld(t, w, 25)
	rec := oracleRecommender(t, split.Train, split.Test)
	opts := RecallOptions{NumNegatives: 50, MaxN: 20, Seed: 2}
	res, err := StratifiedRecall([]core.Recommender{rec}, split.Train, split.Test, []int{3, 8, 1 << 30}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || len(res[0].Strata) != 3 {
		t.Fatalf("shape %+v", res)
	}
	total := 0
	for _, s := range res[0].Strata {
		total += s.Cases
		for n := 1; n < len(s.RecallAtN); n++ {
			if s.RecallAtN[n] < s.RecallAtN[n-1] {
				t.Fatalf("stratum %d recall not monotone", s.MaxPopularity)
			}
		}
	}
	if total != len(split.Test) {
		t.Fatalf("strata cover %d of %d cases", total, len(split.Test))
	}
	// The oracle hits everything, so every non-empty stratum is ~1 at max N.
	for _, s := range res[0].Strata {
		if s.Cases == 0 {
			continue
		}
		if got := s.RecallAtN[len(s.RecallAtN)-1]; got < 0.99 {
			t.Fatalf("oracle stratum %d recall %v", s.MaxPopularity, got)
		}
	}
}

func TestStratifiedRecallOverallMatchesRecall(t *testing.T) {
	w := testWorld(t, 73)
	split := splitWorld(t, w, 20)
	recs := []core.Recommender{popularityRecommender(t, split.Train)}
	opts := RecallOptions{NumNegatives: 60, MaxN: 15, Seed: 3}
	plain, err := Recall(recs, split.Train, split.Test, opts)
	if err != nil {
		t.Fatal(err)
	}
	strat, err := StratifiedRecall(recs, split.Train, split.Test, []int{1 << 30}, opts)
	if err != nil {
		t.Fatal(err)
	}
	for n := range plain[0].Recall {
		if math.Abs(plain[0].Recall[n]-strat[0].Overall[n]) > 1e-12 {
			t.Fatalf("overall curve diverges at N=%d: %v vs %v", n+1, strat[0].Overall[n], plain[0].Recall[n])
		}
		// A single all-covering stratum must equal the overall curve too.
		if math.Abs(plain[0].Recall[n]-strat[0].Strata[0].RecallAtN[n]) > 1e-12 {
			t.Fatalf("single stratum diverges at N=%d", n+1)
		}
	}
}

func TestStratifiedRecallTailVsHead(t *testing.T) {
	// A popularity scorer must do much better on head strata than tail
	// strata — the effect stratification exists to expose.
	w := testWorld(t, 74)
	split := splitWorld(t, w, 30)
	rec := popularityRecommender(t, split.Train)
	opts := RecallOptions{NumNegatives: 60, MaxN: 30, Seed: 4}
	res, err := StratifiedRecall([]core.Recommender{rec}, split.Train, split.Test, []int{6, 1 << 30}, opts)
	if err != nil {
		t.Fatal(err)
	}
	tail, head := res[0].Strata[0], res[0].Strata[1]
	if tail.Cases == 0 || head.Cases == 0 {
		t.Skipf("degenerate split: tail %d, head %d cases", tail.Cases, head.Cases)
	}
	if tail.RecallAtN[29] >= head.RecallAtN[29] {
		t.Fatalf("popularity scorer: tail recall %v >= head recall %v",
			tail.RecallAtN[29], head.RecallAtN[29])
	}
}

func TestStratifiedRecallEmptyStratumIsZero(t *testing.T) {
	// Regression: an empty stratum must report a zero curve, not the
	// overall curve (a nil index slice once meant "all cases").
	w := testWorld(t, 79)
	split := splitWorld(t, w, 15)
	rec := oracleRecommender(t, split.Train, split.Test)
	// Held-out items are all long-tail, so a popularity-0 bucket below
	// every real popularity is guaranteed empty... popularity >= 1 for
	// rated items, so use an impossible bound structure: bucket 1 catches
	// everything with pop <= huge, leaving bucket 2 empty.
	res, err := StratifiedRecall([]core.Recommender{rec}, split.Train, split.Test,
		[]int{1 << 29, 1 << 30}, RecallOptions{NumNegatives: 50, MaxN: 10, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	empty := res[0].Strata[1]
	if empty.Cases != 0 {
		t.Fatalf("second stratum has %d cases, expected 0", empty.Cases)
	}
	for n, v := range empty.RecallAtN {
		if v != 0 {
			t.Fatalf("empty stratum recall@%d = %v, want 0", n+1, v)
		}
	}
}

func TestBootstrapRecallValidation(t *testing.T) {
	w := testWorld(t, 75)
	split := splitWorld(t, w, 15)
	rec := oracleRecommender(t, split.Train, split.Test)
	opts := RecallOptions{NumNegatives: 50, Seed: 5}
	if _, err := BootstrapRecall([]core.Recommender{rec}, split.Train, split.Test, 0, 0.95, 100, opts); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := BootstrapRecall([]core.Recommender{rec}, split.Train, split.Test, 10, 0, 100, opts); err == nil {
		t.Fatal("level=0 accepted")
	}
	if _, err := BootstrapRecall([]core.Recommender{rec}, split.Train, split.Test, 10, 1, 100, opts); err == nil {
		t.Fatal("level=1 accepted")
	}
}

func TestBootstrapRecallBracketsPoint(t *testing.T) {
	w := testWorld(t, 76)
	split := splitWorld(t, w, 25)
	recs := []core.Recommender{
		oracleRecommender(t, split.Train, split.Test),
		randomRecommender(t, split.Train, 6),
	}
	res, err := BootstrapRecall(recs, split.Train, split.Test, 10, 0.95, 400,
		RecallOptions{NumNegatives: 80, MaxN: 10, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results %d", len(res))
	}
	for _, r := range res {
		if r.Lo > r.Point+1e-12 || r.Hi < r.Point-1e-12 {
			t.Fatalf("%s: interval [%v, %v] does not bracket point %v", r.Name, r.Lo, r.Hi, r.Point)
		}
		if r.Lo < 0 || r.Hi > 1 {
			t.Fatalf("%s: interval [%v, %v] outside [0,1]", r.Name, r.Lo, r.Hi)
		}
		if r.N != 10 || r.Level != 0.95 || r.Resample != 400 {
			t.Fatalf("metadata %+v", r)
		}
	}
	// The oracle's interval must sit entirely above random's.
	if res[0].Lo <= res[1].Hi {
		t.Fatalf("oracle CI [%v,%v] overlaps random CI [%v,%v]",
			res[0].Lo, res[0].Hi, res[1].Lo, res[1].Hi)
	}
}

func TestBootstrapRecallDeterministic(t *testing.T) {
	w := testWorld(t, 77)
	split := splitWorld(t, w, 15)
	rec := popularityRecommender(t, split.Train)
	opts := RecallOptions{NumNegatives: 50, MaxN: 10, Seed: 7}
	a, err := BootstrapRecall([]core.Recommender{rec}, split.Train, split.Test, 10, 0.9, 200, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BootstrapRecall([]core.Recommender{rec}, split.Train, split.Test, 10, 0.9, 200, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] {
		t.Fatalf("same seed, different intervals: %+v vs %+v", a[0], b[0])
	}
}

func TestPairedBootstrapDiffSeparatesOracleFromRandom(t *testing.T) {
	w := testWorld(t, 81)
	split := splitWorld(t, w, 25)
	oracle := oracleRecommender(t, split.Train, split.Test)
	random := randomRecommender(t, split.Train, 4)
	opts := RecallOptions{NumNegatives: 80, MaxN: 10, Seed: 9}
	d, err := PairedBootstrapDiff(oracle, random, split.Train, split.Test, 10, 0.95, 400, opts)
	if err != nil {
		t.Fatal(err)
	}
	if d.NameA != "Oracle" || d.NameB != "Rand" {
		t.Fatalf("names %+v", d)
	}
	if d.Diff <= 0 {
		t.Fatalf("oracle-random diff %v", d.Diff)
	}
	if !d.Significant || d.Lo <= 0 {
		t.Fatalf("clear gap not significant: %+v", d)
	}
	if d.Lo > d.Diff || d.Hi < d.Diff {
		t.Fatalf("interval [%v,%v] excludes point %v", d.Lo, d.Hi, d.Diff)
	}
}

func TestPairedBootstrapDiffSelfIsZero(t *testing.T) {
	w := testWorld(t, 82)
	split := splitWorld(t, w, 15)
	rec := popularityRecommender(t, split.Train)
	d, err := PairedBootstrapDiff(rec, rec, split.Train, split.Test, 10, 0.95, 200,
		RecallOptions{NumNegatives: 60, MaxN: 10, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if d.Diff != 0 || d.Lo != 0 || d.Hi != 0 || d.Significant {
		t.Fatalf("self comparison %+v", d)
	}
}

func TestPairedBootstrapDiffValidation(t *testing.T) {
	w := testWorld(t, 83)
	split := splitWorld(t, w, 10)
	rec := popularityRecommender(t, split.Train)
	opts := RecallOptions{NumNegatives: 60, Seed: 11}
	if _, err := PairedBootstrapDiff(rec, rec, split.Train, split.Test, 0, 0.95, 100, opts); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := PairedBootstrapDiff(rec, rec, split.Train, split.Test, 10, 2, 100, opts); err == nil {
		t.Fatal("level=2 accepted")
	}
	if _, err := PairedBootstrapDiff(rec, rec, split.Train, nil, 10, 0.95, 100, opts); err == nil {
		t.Fatal("empty test set accepted")
	}
}

func TestCurveFromRanksSubset(t *testing.T) {
	ranks := []int{1, 3, 0, 11, 2}
	// All cases, MaxN 10: hits are ranks 1,2,3 → 3/5 at N≥3.
	full := curveFromRanks(ranks, nil, 10)
	if full[0] != 0.2 || full[2] != 0.6 || full[9] != 0.6 {
		t.Fatalf("full curve %v", full)
	}
	// Subset {0, 2}: ranks 1 and 0 → 1/2 everywhere.
	sub := curveFromRanks(ranks, []int{0, 2}, 10)
	if sub[0] != 0.5 || sub[9] != 0.5 {
		t.Fatalf("subset curve %v", sub)
	}
	// Empty subset: all zeros.
	empty := curveFromRanks(ranks, []int{}, 10)
	for _, v := range empty {
		if v != 0 {
			t.Fatalf("empty subset curve %v", empty)
		}
	}
}

func TestClampIndex(t *testing.T) {
	if clampIndex(-1, 5) != 0 || clampIndex(5, 5) != 4 || clampIndex(3, 5) != 3 {
		t.Fatal("clampIndex broken")
	}
}

// splitWorldHelper sanity: splitWorld is defined in eval_test.go and
// reused here; this test pins the assumption that the held-out ratings
// are all long-tail (the strata tests depend on popularity spread).
func TestSplitWorldHoldsOutTailRatings(t *testing.T) {
	w := testWorld(t, 78)
	split := splitWorld(t, w, 10)
	tail := w.Data.LongTailItems(0.2)
	for _, r := range split.Test {
		if _, ok := tail[r.Item]; !ok {
			t.Fatalf("held-out item %d not in the catalog tail", r.Item)
		}
	}
}
