package eval

import (
	"fmt"
	"time"

	"longtailrec/internal/core"
	"longtailrec/internal/dataset"
	"longtailrec/internal/ontology"
)

// ListOptions configure the §5.2.2–§5.2.6 panel experiments.
type ListOptions struct {
	// ListSize is how many items each user receives (the paper uses 10).
	// <= 0 means 10.
	ListSize int
	// Ontology enables the Table 3 similarity measurement when non-nil.
	Ontology *ontology.Tree
	// Parallelism > 1 computes each recommender's panel lists through
	// core.BatchRecommendRequests across that many workers.
	// SecondsPerUser is then total wall-clock divided by panel size — an
	// amortized throughput figure rather than the isolated per-query
	// latency the sequential default measures (keep the default for
	// Table 5 reproductions).
	Parallelism int
	// Query is the request template every panel query derives from: the
	// evaluation is expressed as core.Requests with this frozen option
	// set (Ctx bounds the whole run; ExcludeItems / CandidateItems /
	// LongTailOnly scope every list identically). User and K are
	// overwritten per query from the panel and ListSize; AllowFallback
	// is ignored — a user no algorithm can serve fails the run, as the
	// protocols require.
	Query core.Request
}

func (o ListOptions) withDefaults() ListOptions {
	if o.ListSize <= 0 {
		o.ListSize = 10
	}
	return o
}

// ListMetrics aggregates one algorithm's behaviour over a test-user panel.
type ListMetrics struct {
	Name string
	// PopularityAt[n-1] is the mean rating-frequency of the item at
	// position n, averaged over users (Figure 6's y-axis).
	PopularityAt []float64
	// MeanPopularity averages popularity over all recommended slots.
	MeanPopularity float64
	// Diversity is Eq. 17 with the paper's normalization: unique items
	// recommended across the panel divided by the ideal maximum
	// min(catalog, users×listSize) (Table 2).
	Diversity float64
	// Similarity is the Table 3 ontology relevance (0 when no ontology
	// was supplied).
	Similarity float64
	// SecondsPerUser is the mean wall-clock recommendation latency
	// (Table 5's quantity).
	SecondsPerUser float64
	// UsersServed counts users who received at least one recommendation.
	UsersServed int
}

// Lists runs every recommender over the user panel and measures the
// popularity, diversity, similarity and latency of its top-N lists. The
// panel users must exist in train (which supplies item popularity and the
// preference sets for the similarity measurement).
func Lists(recs []core.Recommender, train *dataset.Dataset, users []int, opts ListOptions) ([]ListMetrics, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("eval: no recommenders")
	}
	if len(users) == 0 {
		return nil, fmt.Errorf("eval: empty user panel")
	}
	opts = opts.withDefaults()
	pop := train.ItemPopularity()

	ideal := len(users) * opts.ListSize
	if train.NumItems() < ideal {
		ideal = train.NumItems()
	}

	out := make([]ListMetrics, 0, len(recs))
	for _, rec := range recs {
		m := ListMetrics{Name: rec.Name(), PopularityAt: make([]float64, opts.ListSize)}
		posCount := make([]int, opts.ListSize)
		unique := make(map[int]struct{})
		var popTotal float64
		var popSlots int
		var simTotal float64
		var simUsers int
		var elapsed time.Duration
		// Every panel query is the same frozen request template, only the
		// user varies: the evaluation measures one option set end to end.
		mkReq := func(u int) core.Request {
			req := opts.Query
			req.User = u
			req.K = opts.ListSize
			req.AllowFallback = false
			return req
		}
		var batched []core.Response
		if opts.Parallelism > 1 {
			reqs := make([]core.Request, len(users))
			for i, u := range users {
				reqs[i] = mkReq(u)
			}
			start := time.Now()
			resps, err := core.BatchRecommendRequests(rec, reqs, opts.Parallelism)
			elapsed = time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("eval: %s batch recommending: %w", rec.Name(), err)
			}
			batched = resps
		}
		for ui, u := range users {
			var list []core.Scored
			if batched != nil {
				// The batch path maps cold users to zero Responses; surface
				// them as the same error the sequential path below reports,
				// so the Parallelism knob never changes which panels are
				// accepted.
				if batched[ui].Algo == "" {
					return nil, fmt.Errorf("eval: %s recommending for user %d: %w", rec.Name(), u, core.ErrColdUser)
				}
				list = batched[ui].Items
			} else {
				start := time.Now()
				resp, err := core.RecommendRequest(rec, mkReq(u))
				elapsed += time.Since(start)
				if err != nil {
					return nil, fmt.Errorf("eval: %s recommending for user %d: %w", rec.Name(), u, err)
				}
				list = resp.Items
			}
			if len(list) == 0 {
				continue
			}
			m.UsersServed++
			items := make([]int, len(list))
			for n, s := range list {
				items[n] = s.Item
				unique[s.Item] = struct{}{}
				m.PopularityAt[n] += float64(pop[s.Item])
				posCount[n]++
				popTotal += float64(pop[s.Item])
				popSlots++
			}
			if opts.Ontology != nil {
				prefs := make([]int, 0, 16)
				for i := range train.UserItemSet(u) {
					prefs = append(prefs, i)
				}
				simTotal += opts.Ontology.MeanListSimilarity(prefs, items)
				simUsers++
			}
		}
		for n := range m.PopularityAt {
			if posCount[n] > 0 {
				m.PopularityAt[n] /= float64(posCount[n])
			}
		}
		if popSlots > 0 {
			m.MeanPopularity = popTotal / float64(popSlots)
		}
		m.Diversity = float64(len(unique)) / float64(ideal)
		if simUsers > 0 {
			m.Similarity = simTotal / float64(simUsers)
		}
		m.SecondsPerUser = elapsed.Seconds() / float64(len(users))
		out = append(out, m)
	}
	return out, nil
}
