// Popularity-stratified recall and bootstrap confidence intervals — the
// statistical-rigor layer over the Figure 5 protocol. Stratifying by item
// popularity is how Cremonesi et al. (the paper's PureSVD source) separate
// head accuracy from tail accuracy; bootstrap CIs say whether an observed
// gap between two algorithms survives resampling noise.

package eval

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"longtailrec/internal/core"
	"longtailrec/internal/dataset"
)

// StratumResult is one popularity bucket of a stratified recall run.
type StratumResult struct {
	// MaxPopularity is the bucket's inclusive upper popularity bound.
	MaxPopularity int
	// Cases is how many test ratings fell in the bucket.
	Cases int
	// RecallAtN is Recall@N within the bucket; index n-1 holds Recall@n.
	RecallAtN []float64
}

// StratifiedResult is one algorithm's recall broken down by the
// popularity of the held-out item.
type StratifiedResult struct {
	Name    string
	Strata  []StratumResult
	Overall []float64
}

// StratifiedRecall runs the Figure 5 protocol once per algorithm and
// reports recall separately for each popularity bucket. bounds are the
// inclusive upper popularity limits of the buckets in ascending order
// (e.g. 10, 50, math.MaxInt for tail / torso / head); the final bound is
// raised to cover every item if needed.
func StratifiedRecall(recs []core.Recommender, train *dataset.Dataset, test []dataset.Rating, bounds []int, opts RecallOptions) ([]StratifiedResult, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("eval: no strata bounds")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("eval: strata bounds must be strictly ascending, got %v", bounds)
		}
	}
	ranksPer, opts, err := allCaseRanks(recs, train, test, opts)
	if err != nil {
		return nil, err
	}
	pop := train.ItemPopularity()
	// The last bound must cover every test item.
	maxPop := 0
	for _, r := range test {
		if pop[r.Item] > maxPop {
			maxPop = pop[r.Item]
		}
	}
	bounds = append([]int(nil), bounds...)
	if bounds[len(bounds)-1] < maxPop {
		bounds[len(bounds)-1] = maxPop
	}
	stratumOf := func(item int) int {
		p := pop[item]
		for s, b := range bounds {
			if p <= b {
				return s
			}
		}
		return len(bounds) - 1
	}

	out := make([]StratifiedResult, 0, len(recs))
	for ri, rec := range recs {
		res := StratifiedResult{Name: rec.Name(), Overall: curveFromRanks(ranksPer[ri], nil, opts.MaxN)}
		for s, b := range bounds {
			// Must stay non-nil: curveFromRanks reads nil as "all cases",
			// which would report the overall curve for an empty stratum.
			idx := make([]int, 0, len(test))
			for t, r := range test {
				if stratumOf(r.Item) == s {
					idx = append(idx, t)
				}
			}
			res.Strata = append(res.Strata, StratumResult{
				MaxPopularity: b,
				Cases:         len(idx),
				RecallAtN:     curveFromRanks(ranksPer[ri], idx, opts.MaxN),
			})
		}
		out = append(out, res)
	}
	return out, nil
}

// RecallInterval is a bootstrap confidence interval for one Recall@N point.
type RecallInterval struct {
	Name     string
	N        int
	Point    float64 // recall on the full test set
	Lo, Hi   float64 // percentile bootstrap bounds
	Level    float64 // e.g. 0.95
	Resample int     // bootstrap replicates
}

// BootstrapRecall estimates a percentile-bootstrap confidence interval for
// Recall@n by resampling test cases with replacement. level is the
// two-sided confidence level (0 < level < 1); resamples <= 0 means 1000.
func BootstrapRecall(recs []core.Recommender, train *dataset.Dataset, test []dataset.Rating, n int, level float64, resamples int, opts RecallOptions) ([]RecallInterval, error) {
	if n < 1 {
		return nil, fmt.Errorf("eval: bootstrap N %d, need >= 1", n)
	}
	if level <= 0 || level >= 1 {
		return nil, fmt.Errorf("eval: confidence level %v outside (0,1)", level)
	}
	if resamples <= 0 {
		resamples = 1000
	}
	if opts.MaxN < n {
		opts.MaxN = n
	}
	ranksPer, opts, err := allCaseRanks(recs, train, test, opts)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opts.Seed + 7919))
	out := make([]RecallInterval, 0, len(recs))
	for ri, rec := range recs {
		ranks := ranksPer[ri]
		hits := make([]float64, len(ranks)) // 1 if rank in [1,n]
		point := 0.0
		for t, rank := range ranks {
			if rank >= 1 && rank <= n {
				hits[t] = 1
				point++
			}
		}
		point /= float64(len(ranks))
		stats := make([]float64, resamples)
		for b := 0; b < resamples; b++ {
			total := 0.0
			for c := 0; c < len(hits); c++ {
				total += hits[rng.Intn(len(hits))]
			}
			stats[b] = total / float64(len(hits))
		}
		sort.Float64s(stats)
		alpha := (1 - level) / 2
		lo := stats[clampIndex(int(math.Floor(alpha*float64(resamples))), resamples)]
		hi := stats[clampIndex(int(math.Ceil((1-alpha)*float64(resamples)))-1, resamples)]
		out = append(out, RecallInterval{
			Name: rec.Name(), N: n, Point: point,
			Lo: lo, Hi: hi, Level: level, Resample: resamples,
		})
	}
	return out, nil
}

// DiffInterval is a paired-bootstrap confidence interval on the Recall@N
// difference between two algorithms. Significant means the interval
// excludes zero — the observed gap survives resampling noise.
type DiffInterval struct {
	NameA, NameB string
	N            int
	Diff         float64 // Recall_A@N − Recall_B@N on the full test set
	Lo, Hi       float64
	Level        float64
	Significant  bool
}

// PairedBootstrapDiff estimates a percentile-bootstrap interval on
// Recall@n(a) − Recall@n(b). Pairing matters: both algorithms rank the
// same candidate sets, so resampling test cases jointly cancels the
// shared per-case difficulty that independent intervals would double
// count.
func PairedBootstrapDiff(a, b core.Recommender, train *dataset.Dataset, test []dataset.Rating, n int, level float64, resamples int, opts RecallOptions) (*DiffInterval, error) {
	if n < 1 {
		return nil, fmt.Errorf("eval: paired bootstrap N %d, need >= 1", n)
	}
	if level <= 0 || level >= 1 {
		return nil, fmt.Errorf("eval: confidence level %v outside (0,1)", level)
	}
	if resamples <= 0 {
		resamples = 1000
	}
	if opts.MaxN < n {
		opts.MaxN = n
	}
	ranksPer, opts, err := allCaseRanks([]core.Recommender{a, b}, train, test, opts)
	if err != nil {
		return nil, err
	}
	diff := make([]float64, len(test)) // per-case hit difference in {-1,0,1}
	point := 0.0
	for t := range test {
		var da, db float64
		if r := ranksPer[0][t]; r >= 1 && r <= n {
			da = 1
		}
		if r := ranksPer[1][t]; r >= 1 && r <= n {
			db = 1
		}
		diff[t] = da - db
		point += diff[t]
	}
	point /= float64(len(test))
	rng := rand.New(rand.NewSource(opts.Seed + 104729))
	stats := make([]float64, resamples)
	for bt := 0; bt < resamples; bt++ {
		total := 0.0
		for c := 0; c < len(diff); c++ {
			total += diff[rng.Intn(len(diff))]
		}
		stats[bt] = total / float64(len(diff))
	}
	sort.Float64s(stats)
	alpha := (1 - level) / 2
	lo := stats[clampIndex(int(math.Floor(alpha*float64(resamples))), resamples)]
	hi := stats[clampIndex(int(math.Ceil((1-alpha)*float64(resamples)))-1, resamples)]
	return &DiffInterval{
		NameA: a.Name(), NameB: b.Name(), N: n,
		Diff: point, Lo: lo, Hi: hi, Level: level,
		Significant: lo > 0 || hi < 0,
	}, nil
}

// allCaseRanks draws the shared candidate sets and computes per-case ranks
// for every recommender — the common core of Recall, StratifiedRecall and
// BootstrapRecall.
func allCaseRanks(recs []core.Recommender, train *dataset.Dataset, test []dataset.Rating, opts RecallOptions) ([][]int, RecallOptions, error) {
	if len(recs) == 0 {
		return nil, opts, fmt.Errorf("eval: no recommenders")
	}
	if len(test) == 0 {
		return nil, opts, fmt.Errorf("eval: empty test set")
	}
	opts = opts.withDefaults()
	if train.NumItems() <= opts.NumNegatives {
		return nil, opts, fmt.Errorf("eval: catalog of %d items cannot supply %d negatives", train.NumItems(), opts.NumNegatives)
	}
	candidates := drawCandidates(train, test, opts)
	workers := opts.Parallelism
	if workers <= 0 {
		workers = 1
	}
	if workers > len(test) {
		workers = len(test)
	}
	out := make([][]int, len(recs))
	for ri, rec := range recs {
		ranks, err := caseRanks(rec, test, candidates, workers)
		if err != nil {
			return nil, opts, err
		}
		out[ri] = ranks
	}
	return out, opts, nil
}

// curveFromRanks converts per-case ranks into a Recall@1..MaxN curve. idx
// selects a subset of cases; nil means all. An empty subset yields zeros.
func curveFromRanks(ranks []int, idx []int, maxN int) []float64 {
	curve := make([]float64, maxN)
	cases := len(ranks)
	if idx != nil {
		cases = len(idx)
	}
	if cases == 0 {
		return curve
	}
	consider := func(rank int) {
		if rank == 0 || rank > maxN {
			return
		}
		for n := rank - 1; n < maxN; n++ {
			curve[n]++
		}
	}
	if idx == nil {
		for _, rank := range ranks {
			consider(rank)
		}
	} else {
		for _, t := range idx {
			consider(ranks[t])
		}
	}
	for n := range curve {
		curve[n] /= float64(cases)
	}
	return curve
}

func clampIndex(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}
