package eval

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"longtailrec/internal/core"
	"longtailrec/internal/dataset"
	"longtailrec/internal/synth"
)

// errScoring is a sentinel for error-propagation tests.
var errScoring = errors.New("synthetic scoring failure")

// testWorld generates a small synthetic corpus for evaluation tests.
func testWorld(t testing.TB, seed int64) *synth.World {
	t.Helper()
	w, err := synth.Generate(synth.Config{
		NumUsers:           150,
		NumItems:           260,
		NumGenres:          4,
		MeanRatingsPerUser: 22,
		MinRatingsPerUser:  6,
		Seed:               seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// oracleRecommender scores every held-out item of each user maximally —
// the recall upper bound (up to ties when a user has several held-out
// items and one of them is drawn as a negative).
func oracleRecommender(t testing.TB, d *dataset.Dataset, test []dataset.Rating) core.Recommender {
	t.Helper()
	favorites := make(map[int]map[int]struct{})
	for _, r := range test {
		if favorites[r.User] == nil {
			favorites[r.User] = make(map[int]struct{})
		}
		favorites[r.User][r.Item] = struct{}{}
	}
	g := d.Graph()
	rec, err := core.NewFuncRecommender("Oracle", g, func(u int) ([]float64, error) {
		out := make([]float64, d.NumItems())
		for item := range favorites[u] {
			out[item] = 1
		}
		return out, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

// constantRecommender scores all items identically (worst case: rank decided
// by tie-breaking).
func constantRecommender(t testing.TB, d *dataset.Dataset) core.Recommender {
	t.Helper()
	rec, err := core.NewFuncRecommender("Const", d.Graph(), func(u int) ([]float64, error) {
		return make([]float64, d.NumItems()), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

// popularityRecommender mimics the head-pushing baselines.
func popularityRecommender(t testing.TB, d *dataset.Dataset) core.Recommender {
	t.Helper()
	pop := d.ItemPopularity()
	rec, err := core.NewFuncRecommender("Pop", d.Graph(), func(u int) ([]float64, error) {
		out := make([]float64, len(pop))
		for i, p := range pop {
			out[i] = float64(p)
		}
		return out, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

// antiPopularityRecommender pushes the tail.
func antiPopularityRecommender(t testing.TB, d *dataset.Dataset) core.Recommender {
	t.Helper()
	pop := d.ItemPopularity()
	rec, err := core.NewFuncRecommender("AntiPop", d.Graph(), func(u int) ([]float64, error) {
		out := make([]float64, len(pop))
		for i, p := range pop {
			if p == 0 {
				out[i] = math.Inf(-1) // never-rated items unscorable
				continue
			}
			out[i] = -float64(p)
		}
		return out, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

// randomRecommender scores items randomly but deterministically per user.
func randomRecommender(t testing.TB, d *dataset.Dataset, seed int64) core.Recommender {
	t.Helper()
	rec, err := core.NewFuncRecommender("Rand", d.Graph(), func(u int) ([]float64, error) {
		rng := rand.New(rand.NewSource(seed + int64(u)))
		out := make([]float64, d.NumItems())
		for i := range out {
			out[i] = rng.Float64()
		}
		return out, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func splitWorld(t testing.TB, w *synth.World, numTest int) *dataset.HeldOutSplit {
	t.Helper()
	split, err := w.Data.SplitLongTailTest(rand.New(rand.NewSource(3)), numTest, 5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	return split
}

func TestRecallValidation(t *testing.T) {
	w := testWorld(t, 1)
	split := splitWorld(t, w, 20)
	if _, err := Recall(nil, split.Train, split.Test, RecallOptions{}); err == nil {
		t.Fatal("no recommenders accepted")
	}
	rec := constantRecommender(t, split.Train)
	if _, err := Recall([]core.Recommender{rec}, split.Train, nil, RecallOptions{}); err == nil {
		t.Fatal("empty test set accepted")
	}
	if _, err := Recall([]core.Recommender{rec}, split.Train, split.Test, RecallOptions{NumNegatives: 10000}); err == nil {
		t.Fatal("too many negatives accepted")
	}
}

func TestRecallOracleIsPerfect(t *testing.T) {
	w := testWorld(t, 2)
	split := splitWorld(t, w, 25)
	oracle := oracleRecommender(t, split.Train, split.Test)
	res, err := Recall([]core.Recommender{oracle}, split.Train, split.Test,
		RecallOptions{NumNegatives: 100, MaxN: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The oracle gives held-out items score 1 vs 0 elsewhere, so rank 1
	// except when a user's other held-out item is sampled as a negative
	// and wins the tie. Recall@5 absorbs those ties.
	if res[0].Recall[0] < 0.75 {
		t.Fatalf("oracle recall@1 = %v", res[0].Recall[0])
	}
	if res[0].Recall[4] < 0.95 {
		t.Fatalf("oracle recall@5 = %v", res[0].Recall[4])
	}
	if res[0].Cases != 25 {
		t.Fatalf("cases %d", res[0].Cases)
	}
}

func TestRecallCurveMonotoneAndBounded(t *testing.T) {
	w := testWorld(t, 3)
	split := splitWorld(t, w, 25)
	recs := []core.Recommender{
		popularityRecommender(t, split.Train),
		randomRecommender(t, split.Train, 7),
		constantRecommender(t, split.Train),
	}
	res, err := Recall(recs, split.Train, split.Test, RecallOptions{NumNegatives: 120, MaxN: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		prev := 0.0
		for n, v := range r.Recall {
			if v < prev || v < 0 || v > 1 {
				t.Fatalf("%s recall@%d = %v (prev %v)", r.Name, n+1, v, prev)
			}
			prev = v
		}
	}
}

func TestRecallRandomNearChance(t *testing.T) {
	w := testWorld(t, 4)
	split := splitWorld(t, w, 40)
	rec := randomRecommender(t, split.Train, 11)
	res, err := Recall([]core.Recommender{rec}, split.Train, split.Test,
		RecallOptions{NumNegatives: 100, MaxN: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Chance level at N=50 with 101 candidates is ~0.495; allow wide noise.
	got := res[0].Recall[49]
	if got < 0.2 || got > 0.8 {
		t.Fatalf("random recall@50 = %v, expected near 0.5", got)
	}
}

func TestRecallSameCandidatesAcrossAlgorithms(t *testing.T) {
	// Two identical recommenders must produce identical curves (shared
	// negative sampling).
	w := testWorld(t, 5)
	split := splitWorld(t, w, 20)
	a := popularityRecommender(t, split.Train)
	b := popularityRecommender(t, split.Train)
	res, err := Recall([]core.Recommender{a, b}, split.Train, split.Test,
		RecallOptions{NumNegatives: 80, MaxN: 20, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for n := range res[0].Recall {
		if res[0].Recall[n] != res[1].Recall[n] {
			t.Fatalf("identical algorithms diverge at N=%d", n+1)
		}
	}
}

func TestRecallParallelMatchesSerial(t *testing.T) {
	w := testWorld(t, 14)
	split := splitWorld(t, w, 30)
	recs := []core.Recommender{popularityRecommender(t, split.Train), randomRecommender(t, split.Train, 21)}
	serial, err := Recall(recs, split.Train, split.Test,
		RecallOptions{NumNegatives: 100, MaxN: 25, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Recall(recs, split.Train, split.Test,
		RecallOptions{NumNegatives: 100, MaxN: 25, Seed: 6, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for a := range serial {
		for n := range serial[a].Recall {
			if serial[a].Recall[n] != parallel[a].Recall[n] {
				t.Fatalf("%s diverges at N=%d: %v vs %v",
					serial[a].Name, n+1, serial[a].Recall[n], parallel[a].Recall[n])
			}
		}
	}
}

func TestRecallParallelPropagatesErrors(t *testing.T) {
	w := testWorld(t, 15)
	split := splitWorld(t, w, 10)
	bad, err := core.NewFuncRecommender("Bad", split.Train.Graph(), func(u int) ([]float64, error) {
		return nil, errScoring
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Recall([]core.Recommender{bad}, split.Train, split.Test,
		RecallOptions{NumNegatives: 50, MaxN: 10, Parallelism: 4}); err == nil {
		t.Fatal("scoring error swallowed")
	}
}

func TestListsMetrics(t *testing.T) {
	w := testWorld(t, 6)
	d := w.Data
	users, err := d.SampleUsers(rand.New(rand.NewSource(5)), 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	recs := []core.Recommender{
		popularityRecommender(t, d),
		antiPopularityRecommender(t, d),
		randomRecommender(t, d, 13),
	}
	ms, err := Lists(recs, d, users, ListOptions{ListSize: 10, Ontology: w.Ontology})
	if err != nil {
		t.Fatal(err)
	}
	popM, tailM, randM := ms[0], ms[1], ms[2]
	if popM.MeanPopularity <= tailM.MeanPopularity {
		t.Fatalf("popularity recommender mean pop %v not above anti-pop %v",
			popM.MeanPopularity, tailM.MeanPopularity)
	}
	// Both global rankers push near-identical lists to everyone; the
	// personalized random recommender must beat them on diversity.
	if randM.Diversity <= popM.Diversity || randM.Diversity <= tailM.Diversity {
		t.Fatalf("diversity: random %v should beat pop %v and anti-pop %v",
			randM.Diversity, popM.Diversity, tailM.Diversity)
	}
	for _, m := range ms {
		if m.Diversity < 0 || m.Diversity > 1 {
			t.Fatalf("%s diversity %v", m.Name, m.Diversity)
		}
		if m.Similarity < 0 || m.Similarity > 1 {
			t.Fatalf("%s similarity %v", m.Name, m.Similarity)
		}
		if m.SecondsPerUser < 0 {
			t.Fatalf("%s negative time", m.Name)
		}
		if m.UsersServed != len(users) {
			t.Fatalf("%s served %d of %d", m.Name, m.UsersServed, len(users))
		}
		if len(m.PopularityAt) != 10 {
			t.Fatalf("%s per-position length %d", m.Name, len(m.PopularityAt))
		}
	}
}

func TestListsParallelMatchesSequential(t *testing.T) {
	w := testWorld(t, 9)
	d := w.Data
	users, err := d.SampleUsers(rand.New(rand.NewSource(6)), 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	recs := []core.Recommender{
		core.NewAbsorbingTime(d.Graph(), core.WalkOptions{Iterations: 6}),
		popularityRecommender(t, d),
	}
	seq, err := Lists(recs, d, users, ListOptions{ListSize: 8, Ontology: w.Ontology})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Lists(recs, d, users, ListOptions{ListSize: 8, Ontology: w.Ontology, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for k := range seq {
		s, p := seq[k], par[k]
		if s.MeanPopularity != p.MeanPopularity || s.Diversity != p.Diversity ||
			s.Similarity != p.Similarity || s.UsersServed != p.UsersServed {
			t.Fatalf("%s: parallel metrics diverge: %+v vs %+v", s.Name, p, s)
		}
		if p.SecondsPerUser < 0 {
			t.Fatalf("%s: negative batch time", p.Name)
		}
	}
}

func TestListsValidation(t *testing.T) {
	w := testWorld(t, 7)
	rec := constantRecommender(t, w.Data)
	if _, err := Lists(nil, w.Data, []int{0}, ListOptions{}); err == nil {
		t.Fatal("no recommenders accepted")
	}
	if _, err := Lists([]core.Recommender{rec}, w.Data, nil, ListOptions{}); err == nil {
		t.Fatal("empty panel accepted")
	}
}

func TestUserStudySeparatesHeadAndTail(t *testing.T) {
	w := testWorld(t, 8)
	d := w.Data
	users, err := d.SampleUsers(rand.New(rand.NewSource(9)), 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	recs := []core.Recommender{
		popularityRecommender(t, d),
		antiPopularityRecommender(t, d),
	}
	res, err := UserStudy(recs, w, d, users, StudyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pop, tail := res[0], res[1]
	if pop.Novelty >= tail.Novelty {
		t.Fatalf("novelty: popular pusher %v should be below tail pusher %v", pop.Novelty, tail.Novelty)
	}
	for _, r := range res {
		if r.Preference < 1 || r.Preference > 5 {
			t.Fatalf("%s preference %v", r.Name, r.Preference)
		}
		if r.Novelty < 0 || r.Novelty > 1 {
			t.Fatalf("%s novelty %v", r.Name, r.Novelty)
		}
		if r.Serendipity < 1 || r.Serendipity > 5 {
			t.Fatalf("%s serendipity %v", r.Name, r.Serendipity)
		}
		if r.Score < 1 || r.Score > 5 {
			t.Fatalf("%s score %v", r.Name, r.Score)
		}
	}
}

func TestUserStudyValidation(t *testing.T) {
	w := testWorld(t, 10)
	rec := constantRecommender(t, w.Data)
	if _, err := UserStudy(nil, w, w.Data, []int{0}, StudyOptions{}); err == nil {
		t.Fatal("no recommenders accepted")
	}
	if _, err := UserStudy([]core.Recommender{rec}, w, w.Data, nil, StudyOptions{}); err == nil {
		t.Fatal("no evaluators accepted")
	}
}

func TestPopularityPercentiles(t *testing.T) {
	pct := popularityPercentiles([]int{5, 0, 5, 2})
	// Item 1 (pop 0): 0 items below → 0. Item 3 (pop 2): 1 below → 0.25.
	// Items 0, 2 (pop 5): 2 below → 0.5.
	want := []float64{0.5, 0, 0.5, 0.25}
	for i := range want {
		if math.Abs(pct[i]-want[i]) > 1e-12 {
			t.Fatalf("percentiles %v, want %v", pct, want)
		}
	}
}

func TestClamp(t *testing.T) {
	if clamp(0, 1, 5) != 1 || clamp(9, 1, 5) != 5 || clamp(3, 1, 5) != 3 {
		t.Fatal("clamp broken")
	}
}

// TestListsQueryTemplate: the frozen Query option set scopes every
// panel list — here a candidate slate restricts every user's list to
// the slate, sequentially and batched alike.
func TestListsQueryTemplate(t *testing.T) {
	w := testWorld(t, 17)
	d := w.Data
	users, err := d.SampleUsers(rand.New(rand.NewSource(8)), 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	slate := []int{0, 1, 2, 3, 4, 5, 6, 7}
	inSlate := make(map[int]bool, len(slate))
	for _, i := range slate {
		inSlate[i] = true
	}
	at := core.NewAbsorbingTime(d.Graph(), core.WalkOptions{Iterations: 6})
	opts := ListOptions{ListSize: 4, Query: core.Request{CandidateItems: slate}}
	for _, par := range []int{0, 4} {
		opts.Parallelism = par
		ms, err := Lists([]core.Recommender{at}, d, users, opts)
		if err != nil {
			t.Fatal(err)
		}
		// Diversity over a panel restricted to an 8-item slate can cover
		// at most the slate; the popularity figures likewise come only
		// from slate members. Cross-check via per-user lists.
		if ms[0].UsersServed == 0 {
			t.Fatalf("parallelism %d: nobody served", par)
		}
	}
	// Direct check that a restricted request only serves the slate.
	resp, err := core.RecommendRequest(at, core.Request{User: users[0], K: 4, CandidateItems: slate})
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range resp.Items {
		if !inSlate[it.Item] {
			t.Fatalf("off-slate item %d", it.Item)
		}
	}
}
