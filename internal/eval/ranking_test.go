package eval

import (
	"math"
	"testing"

	"longtailrec/internal/core"
)

func TestRankingMetricsOracleVsRandom(t *testing.T) {
	w := testWorld(t, 21)
	split := splitWorld(t, w, 25)
	oracle := oracleRecommender(t, split.Train, split.Test)
	rnd := randomRecommender(t, split.Train, 31)
	res, err := RankingMetrics([]core.Recommender{oracle, rnd}, split.Train, split.Test,
		RecallOptions{NumNegatives: 100, MaxN: 50, Seed: 9, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	o, r := res[0], res[1]
	if o.MRR < 0.8 {
		t.Fatalf("oracle MRR %v", o.MRR)
	}
	if o.NDCG < 0.8 {
		t.Fatalf("oracle NDCG %v", o.NDCG)
	}
	if o.MeanRank > 2 {
		t.Fatalf("oracle mean rank %v", o.MeanRank)
	}
	if r.MRR >= o.MRR || r.NDCG >= o.NDCG {
		t.Fatalf("random (%v/%v) outranks oracle (%v/%v)", r.MRR, r.NDCG, o.MRR, o.NDCG)
	}
	// Random ranks uniformly over ~101 candidates.
	if r.MeanRank < 20 || r.MeanRank > 85 {
		t.Fatalf("random mean rank %v", r.MeanRank)
	}
	for _, x := range res {
		if x.MRR < 0 || x.MRR > 1 || x.NDCG < 0 || x.NDCG > 1 {
			t.Fatalf("%s metrics out of range: %+v", x.Name, x)
		}
		if x.Cases != 25 || x.Scored > x.Cases {
			t.Fatalf("%s case counts: %+v", x.Name, x)
		}
	}
}

func TestRankingMetricsUnscoredTargets(t *testing.T) {
	w := testWorld(t, 22)
	split := splitWorld(t, w, 10)
	neverScores, err := core.NewFuncRecommender("Never", split.Train.Graph(), func(u int) ([]float64, error) {
		out := make([]float64, split.Train.NumItems())
		for i := range out {
			out[i] = math.Inf(-1)
		}
		return out, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RankingMetrics([]core.Recommender{neverScores}, split.Train, split.Test,
		RecallOptions{NumNegatives: 50, MaxN: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Scored != 0 || res[0].MRR != 0 || res[0].NDCG != 0 {
		t.Fatalf("unscored targets produced metrics: %+v", res[0])
	}
}

func TestRankingMetricsValidation(t *testing.T) {
	w := testWorld(t, 23)
	split := splitWorld(t, w, 5)
	rec := constantRecommender(t, split.Train)
	if _, err := RankingMetrics(nil, split.Train, split.Test, RecallOptions{}); err == nil {
		t.Fatal("no recommenders accepted")
	}
	if _, err := RankingMetrics([]core.Recommender{rec}, split.Train, nil, RecallOptions{}); err == nil {
		t.Fatal("empty test accepted")
	}
	if _, err := RankingMetrics([]core.Recommender{rec}, split.Train, split.Test,
		RecallOptions{NumNegatives: 100000}); err == nil {
		t.Fatal("excess negatives accepted")
	}
}
