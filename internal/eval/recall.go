// Package eval implements the paper's evaluation protocols (§5.2): the
// Recall@N leave-out test (Figure 5), the Popularity@N, Diversity and
// ontology-Similarity list measurements (Figure 6, Tables 2–3), the µ
// sweep (Table 4), per-user timing (Table 5), and the simulated user study
// (Table 6, see DESIGN.md §4 for the substitution).
package eval

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"longtailrec/internal/core"
	"longtailrec/internal/dataset"
	"longtailrec/internal/randutil"
)

// RecallOptions configure the §5.2.1 protocol.
type RecallOptions struct {
	// NumNegatives is how many random unrated items accompany each test
	// item (the paper uses 1000). <= 0 means 1000.
	NumNegatives int
	// MaxN is the largest N in the Recall@N curve (the paper plots 1–50).
	// <= 0 means 50.
	MaxN int
	// Seed drives the negative sampling.
	Seed int64
	// Parallelism is the number of goroutines scoring test cases
	// concurrently. <= 0 means 1 (serial). Recommenders must be safe for
	// concurrent reads, which every algorithm in this library is.
	Parallelism int
}

func (o RecallOptions) withDefaults() RecallOptions {
	if o.NumNegatives <= 0 {
		o.NumNegatives = 1000
	}
	if o.MaxN <= 0 {
		o.MaxN = 50
	}
	return o
}

// RecallResult is one algorithm's Recall@N curve; Recall[n-1] is Recall@n.
type RecallResult struct {
	Name   string
	Recall []float64
	// Cases is the number of test cases evaluated.
	Cases int
}

// Recall runs the Figure 5 protocol: for every held-out (user, long-tail,
// 5-star) rating, rank the test item among NumNegatives random items the
// user never rated, and report the fraction of cases where it lands in the
// top N.
//
// All recommenders must have been trained on train (the split's training
// half); test comes from dataset.SplitLongTailTest.
func Recall(recs []core.Recommender, train *dataset.Dataset, test []dataset.Rating, opts RecallOptions) ([]RecallResult, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("eval: no recommenders")
	}
	if len(test) == 0 {
		return nil, fmt.Errorf("eval: empty test set")
	}
	opts = opts.withDefaults()
	if train.NumItems() <= opts.NumNegatives {
		return nil, fmt.Errorf("eval: catalog of %d items cannot supply %d negatives", train.NumItems(), opts.NumNegatives)
	}
	candidates := drawCandidates(train, test, opts)

	workers := opts.Parallelism
	if workers <= 0 {
		workers = 1
	}
	if workers > len(test) {
		workers = len(test)
	}
	results := make([]RecallResult, 0, len(recs))
	for _, rec := range recs {
		ranks, err := caseRanks(rec, test, candidates, workers)
		if err != nil {
			return nil, err
		}
		hits := make([]int, opts.MaxN+1) // hits[n] = cases with rank <= n
		for _, rank := range ranks {
			if rank == 0 || rank > opts.MaxN {
				continue
			}
			for n := rank; n <= opts.MaxN; n++ {
				hits[n]++
			}
		}
		curve := make([]float64, opts.MaxN)
		for n := 1; n <= opts.MaxN; n++ {
			curve[n-1] = float64(hits[n]) / float64(len(test))
		}
		results = append(results, RecallResult{Name: rec.Name(), Recall: curve, Cases: len(test)})
	}
	return results, nil
}

// drawCandidates pre-draws the candidate sets once so every algorithm
// ranks the same items (the paper's "fair to all competitors"
// requirement). Each set is NumNegatives unrated items plus the target.
func drawCandidates(train *dataset.Dataset, test []dataset.Rating, opts RecallOptions) [][]int {
	rng := rand.New(rand.NewSource(opts.Seed))
	candidates := make([][]int, len(test))
	for t, r := range test {
		excl := make(map[int]struct{})
		for i := range train.UserItemSet(r.User) {
			excl[i] = struct{}{}
		}
		excl[r.Item] = struct{}{}
		// Heavy raters may leave fewer than NumNegatives unrated items on
		// small catalogs; clamp per case rather than failing the protocol.
		n := opts.NumNegatives
		if avail := train.NumItems() - len(excl); avail < n {
			n = avail
		}
		negs := randutil.SampleExcluding(rng, train.NumItems(), n, excl)
		candidates[t] = append(negs, r.Item)
	}
	return candidates
}

// caseRanks scores every test case under one recommender, fanning the
// per-user scoring across workers goroutines. A rank of 0 marks a miss
// (target unscored). The first scoring error aborts the whole pass.
func caseRanks(rec core.Recommender, test []dataset.Rating, candidates [][]int, workers int) ([]int, error) {
	ranks := make([]int, len(test))
	if workers <= 1 {
		for t, r := range test {
			rank, err := oneCaseRank(rec, r, candidates[t])
			if err != nil {
				return nil, err
			}
			ranks[t] = rank
		}
		return ranks, nil
	}
	var (
		next     atomic.Int64
		failed   atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t := int(next.Add(1)) - 1
				if t >= len(test) || failed.Load() {
					return
				}
				rank, err := oneCaseRank(rec, test[t], candidates[t])
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					failed.Store(true)
					return
				}
				ranks[t] = rank
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return ranks, nil
}

func oneCaseRank(rec core.Recommender, r dataset.Rating, cands []int) (int, error) {
	scores, err := rec.ScoreItems(r.User)
	if err != nil {
		return 0, fmt.Errorf("eval: %s scoring user %d: %w", rec.Name(), r.User, err)
	}
	if math.IsInf(scores[r.Item], -1) {
		return 0, nil // unscored target: a miss at every N
	}
	return core.RankOf(scores, r.Item, cands), nil
}
