package eval

import (
	"fmt"
	"sort"

	"longtailrec/internal/core"
	"longtailrec/internal/dataset"
)

// SalesDiversity quantifies the §5.2.3 concern — recommenders creating a
// rich-get-richer concentration of demand — with the aggregate measures
// used in the sales-diversity literature the paper cites (Fleder &
// Hosanagar): the Gini coefficient of recommendation exposure across the
// catalog, catalog coverage, and the share of recommendation slots that
// land in the long tail.
type SalesDiversity struct {
	Name string
	// Gini is the Gini coefficient of per-item recommendation counts over
	// the whole catalog: 0 = perfectly even exposure, 1 = all exposure on
	// one item. Popularity-pushing recommenders approach 1.
	Gini float64
	// Coverage is the fraction of the catalog recommended at least once.
	Coverage float64
	// TailShare is the fraction of recommendation slots filled with
	// long-tail items (tail defined by the 20%-of-ratings rule).
	TailShare float64
	// Slots is the number of recommendations measured.
	Slots int
}

// MeasureSalesDiversity runs every recommender over the user panel and
// aggregates exposure statistics across the catalog.
func MeasureSalesDiversity(recs []core.Recommender, train *dataset.Dataset, users []int, listSize int) ([]SalesDiversity, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("eval: no recommenders")
	}
	if len(users) == 0 {
		return nil, fmt.Errorf("eval: empty user panel")
	}
	if listSize <= 0 {
		listSize = 10
	}
	tail := train.LongTailItems(0.2)
	out := make([]SalesDiversity, 0, len(recs))
	for _, rec := range recs {
		exposure := make([]int, train.NumItems())
		slots, tailSlots, covered := 0, 0, 0
		for _, u := range users {
			list, err := rec.Recommend(u, listSize)
			if err != nil {
				return nil, fmt.Errorf("eval: %s for user %d: %w", rec.Name(), u, err)
			}
			for _, s := range list {
				if exposure[s.Item] == 0 {
					covered++
				}
				exposure[s.Item]++
				slots++
				if _, niche := tail[s.Item]; niche {
					tailSlots++
				}
			}
		}
		sd := SalesDiversity{Name: rec.Name(), Slots: slots}
		if slots > 0 {
			sd.Gini = giniCoefficient(exposure)
			sd.Coverage = float64(covered) / float64(train.NumItems())
			sd.TailShare = float64(tailSlots) / float64(slots)
		}
		out = append(out, sd)
	}
	return out, nil
}

// giniCoefficient computes the Gini index of a non-negative count vector
// using the sorted-rank formula G = (2·Σ_i i·x_(i))/(n·Σx) − (n+1)/n,
// with x_(i) ascending and i starting at 1.
func giniCoefficient(counts []int) float64 {
	n := len(counts)
	if n == 0 {
		return 0
	}
	xs := make([]float64, n)
	total := 0.0
	for i, c := range counts {
		xs[i] = float64(c)
		total += float64(c)
	}
	if total == 0 {
		return 0
	}
	sort.Float64s(xs)
	weighted := 0.0
	for i, x := range xs {
		weighted += float64(i+1) * x
	}
	return 2*weighted/(float64(n)*total) - float64(n+1)/float64(n)
}
