package eval

import (
	"fmt"
	"math"

	"longtailrec/internal/core"
	"longtailrec/internal/dataset"
	"longtailrec/internal/synth"
)

// StudyOptions configure the simulated user study of §5.2.7.
type StudyOptions struct {
	// ListSize is recommendations per evaluator; <= 0 means 10.
	ListSize int
	// AwarenessExponent γ shapes how fast item awareness grows with
	// popularity percentile: aware = percentile^γ. γ=1 is linear; larger
	// γ concentrates awareness on the extreme head (only hits are known),
	// smaller γ makes even mid-popularity items widely known (film
	// posters, top lists). <= 0 means 2.5.
	AwarenessExponent float64
}

func (o StudyOptions) withDefaults() StudyOptions {
	if o.ListSize <= 0 {
		o.ListSize = 10
	}
	if o.AwarenessExponent <= 0 {
		o.AwarenessExponent = 2.5
	}
	return o
}

// StudyResult is one algorithm's Table 6 row.
type StudyResult struct {
	Name string
	// Preference (1–5): how well recommendations match the evaluator's
	// ground-truth taste.
	Preference float64
	// Novelty (0–1): fraction of recommendations the evaluator did not
	// already know.
	Novelty float64
	// Serendipity (1–5): pleasant surprise — taste match on unknown items.
	Serendipity float64
	// Score (1–5): overall rating, dominated by preference with a novelty
	// lift.
	Score float64
}

// UserStudy replaces the paper's 50 human movie-lovers with simulated
// evaluators whose ground truth comes from the synthetic world:
//
//   - Preference for item i is the evaluator's taste affinity mapped onto
//     the 1–5 scale.
//   - Awareness of i grows with its popularity percentile — evaluators
//     already know hit movies from posters, top lists and friends, exactly
//     the §5.2.7 explanation for PureSVD/LDA's low novelty. Novelty is the
//     mean unawareness.
//   - Serendipity is taste match weighted by unawareness, on 1–5.
//   - The overall Score blends preference with a mild serendipity bonus.
//
// Evaluators are the given panel of users; their rated items come from
// train (recommenders never see held-out data).
func UserStudy(recs []core.Recommender, world *synth.World, train *dataset.Dataset, evaluators []int, opts StudyOptions) ([]StudyResult, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("eval: no recommenders")
	}
	if len(evaluators) == 0 {
		return nil, fmt.Errorf("eval: no evaluators")
	}
	opts = opts.withDefaults()

	// Popularity percentile per item (fraction of items strictly less
	// popular), the basis of the awareness model.
	pop := train.ItemPopularity()
	percentile := popularityPercentiles(pop)
	aware := func(item int) float64 {
		return math.Pow(percentile[item], opts.AwarenessExponent)
	}

	out := make([]StudyResult, 0, len(recs))
	for _, rec := range recs {
		var prefSum, novSum, serSum, scoreSum float64
		var slots int
		for _, u := range evaluators {
			list, err := rec.Recommend(u, opts.ListSize)
			if err != nil {
				return nil, fmt.Errorf("eval: %s for evaluator %d: %w", rec.Name(), u, err)
			}
			for _, s := range list {
				affinity := world.TasteAffinity(u, s.Item)
				a := aware(s.Item)
				pref := 1 + 4*affinity
				nov := 1 - a
				ser := 1 + 4*affinity*(1-a)
				score := clamp(0.9*pref+0.1*ser, 1, 5)
				prefSum += pref
				novSum += nov
				serSum += ser
				scoreSum += score
				slots++
			}
		}
		if slots == 0 {
			out = append(out, StudyResult{Name: rec.Name()})
			continue
		}
		inv := 1 / float64(slots)
		out = append(out, StudyResult{
			Name:        rec.Name(),
			Preference:  prefSum * inv,
			Novelty:     novSum * inv,
			Serendipity: serSum * inv,
			Score:       scoreSum * inv,
		})
	}
	return out, nil
}

// popularityPercentiles maps raw popularity counts to each item's fraction
// of strictly-less-popular items, in [0, 1).
func popularityPercentiles(pop []int) []float64 {
	n := len(pop)
	// Counting sort over popularity values.
	maxPop := 0
	for _, p := range pop {
		if p > maxPop {
			maxPop = p
		}
	}
	counts := make([]int, maxPop+1)
	for _, p := range pop {
		counts[p]++
	}
	below := make([]int, maxPop+1)
	acc := 0
	for v := 0; v <= maxPop; v++ {
		below[v] = acc
		acc += counts[v]
	}
	out := make([]float64, n)
	for i, p := range pop {
		out[i] = float64(below[p]) / float64(n)
	}
	return out
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
