// Beyond-accuracy list metrics: novelty, serendipity, intra-list
// similarity, and catalog coverage. These quantify the claims the paper
// makes qualitatively — that the walk-based recommenders surface items
// users would not have found (Table 6's Novelty/Serendipity columns)
// without collapsing every user onto the same blockbusters (§5.2.3) — in
// the standard beyond-accuracy vocabulary of the recommender-systems
// literature.

package eval

import (
	"fmt"
	"math"

	"longtailrec/internal/core"
	"longtailrec/internal/dataset"
	"longtailrec/internal/ontology"
)

// BeyondAccuracy aggregates one algorithm's beyond-accuracy behaviour over
// a test-user panel.
type BeyondAccuracy struct {
	Name string
	// Novelty is the mean self-information of recommended items,
	// −log2(pop(i)/numUsers), averaged over slots: recommending an item
	// every user has rated scores ~0 bits; a one-rater item on a
	// 1000-user corpus scores ~10 bits.
	Novelty float64
	// Serendipity blends unexpectedness with relevance: the mean, over
	// slots, of unexp(i) = novelty share × ontology relevance to the
	// user. Without an ontology it degrades to pure unexpectedness.
	Serendipity float64
	// IntraListSimilarity is the mean pairwise ontology similarity inside
	// each user's list (lower = more diverse lists). Zero when no
	// ontology was supplied.
	IntraListSimilarity float64
	// Coverage is the fraction of the catalog recommended to at least one
	// panel user (aggregate diversity's raw form).
	Coverage float64
	// ColdStartShare is the fraction of recommended slots filled by items
	// with at most coldThreshold ratings.
	ColdStartShare float64
	// UsersServed counts users who received at least one recommendation.
	UsersServed int
}

// BeyondAccuracyOptions configure MeasureBeyondAccuracy.
type BeyondAccuracyOptions struct {
	// ListSize is the per-user list length; <= 0 means 10.
	ListSize int
	// Ontology, when non-nil, grounds serendipity's relevance term and
	// the intra-list similarity.
	Ontology *ontology.Tree
	// ColdThreshold is the maximum popularity of a "cold" item; <= 0
	// means 3.
	ColdThreshold int
}

func (o BeyondAccuracyOptions) withDefaults() BeyondAccuracyOptions {
	if o.ListSize <= 0 {
		o.ListSize = 10
	}
	if o.ColdThreshold <= 0 {
		o.ColdThreshold = 3
	}
	return o
}

// MeasureBeyondAccuracy runs every recommender over the panel and reports
// novelty, serendipity, intra-list similarity, coverage and cold-start
// share of its lists.
func MeasureBeyondAccuracy(recs []core.Recommender, train *dataset.Dataset, users []int, opts BeyondAccuracyOptions) ([]BeyondAccuracy, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("eval: no recommenders")
	}
	if len(users) == 0 {
		return nil, fmt.Errorf("eval: empty user panel")
	}
	opts = opts.withDefaults()
	pop := train.ItemPopularity()
	numUsers := float64(train.NumUsers())

	out := make([]BeyondAccuracy, 0, len(recs))
	for _, rec := range recs {
		m := BeyondAccuracy{Name: rec.Name()}
		unique := make(map[int]struct{})
		var novTotal, serTotal, ilsTotal float64
		var slots, ilsLists, coldSlots int
		for _, u := range users {
			list, err := rec.Recommend(u, opts.ListSize)
			if err != nil {
				return nil, fmt.Errorf("eval: %s recommending for user %d: %w", rec.Name(), u, err)
			}
			if len(list) == 0 {
				continue
			}
			m.UsersServed++
			items := make([]int, len(list))
			var prefs []int
			if opts.Ontology != nil {
				for i := range train.UserItemSet(u) {
					prefs = append(prefs, i)
				}
			}
			for n, s := range list {
				items[n] = s.Item
				unique[s.Item] = struct{}{}
				slots++
				nov := selfInformation(pop[s.Item], numUsers)
				novTotal += nov
				// Normalize novelty to [0,1] by the corpus maximum
				// (a single-rating item) for the serendipity blend.
				unexp := nov / selfInformation(1, numUsers)
				if opts.Ontology != nil {
					unexp *= opts.Ontology.UserSimilarity(prefs, s.Item)
				}
				serTotal += unexp
				if pop[s.Item] <= opts.ColdThreshold {
					coldSlots++
				}
			}
			if opts.Ontology != nil && len(items) >= 2 {
				ilsTotal += intraListSimilarity(opts.Ontology, items)
				ilsLists++
			}
		}
		if slots > 0 {
			m.Novelty = novTotal / float64(slots)
			m.Serendipity = serTotal / float64(slots)
			m.ColdStartShare = float64(coldSlots) / float64(slots)
		}
		if ilsLists > 0 {
			m.IntraListSimilarity = ilsTotal / float64(ilsLists)
		}
		m.Coverage = float64(len(unique)) / float64(train.NumItems())
		out = append(out, m)
	}
	return out, nil
}

// selfInformation is −log2(pop/numUsers), with unrated items treated as
// popularity 1 (the most novel an observable item can be).
func selfInformation(pop int, numUsers float64) float64 {
	if pop < 1 {
		pop = 1
	}
	p := float64(pop) / numUsers
	if p > 1 {
		p = 1
	}
	return -math.Log2(p)
}

// intraListSimilarity averages ontology similarity over all unordered
// pairs in one list.
func intraListSimilarity(tree *ontology.Tree, items []int) float64 {
	total, pairs := 0.0, 0
	for a := 0; a < len(items); a++ {
		for b := a + 1; b < len(items); b++ {
			total += tree.ItemSimilarity(items[a], items[b])
			pairs++
		}
	}
	if pairs == 0 {
		return 0
	}
	return total / float64(pairs)
}
