package core

import (
	"fmt"

	"longtailrec/internal/graph"
)

// ScoreFunc computes higher-is-better item scores for a user.
type ScoreFunc func(u int) ([]float64, error)

// FuncRecommender adapts any score function (LDA, PureSVD, DPPR, kNN,
// popularity, association rules, ...) to the Recommender interface, using
// the graph to exclude already-rated items from Recommend.
type FuncRecommender struct {
	name string
	g    *graph.Bipartite
	fn   ScoreFunc
}

// NewFuncRecommender wraps fn under the given algorithm name.
func NewFuncRecommender(name string, g *graph.Bipartite, fn ScoreFunc) (*FuncRecommender, error) {
	if name == "" {
		return nil, fmt.Errorf("core: empty recommender name")
	}
	if g == nil || fn == nil {
		return nil, fmt.Errorf("core: nil graph or score function")
	}
	return &FuncRecommender{name: name, g: g, fn: fn}, nil
}

// Name implements Recommender.
func (f *FuncRecommender) Name() string { return f.name }

// ScoreItems implements Recommender.
func (f *FuncRecommender) ScoreItems(u int) ([]float64, error) {
	if err := validateUser(u, f.g.NumUsers()); err != nil {
		return nil, err
	}
	scores, err := f.fn(u)
	if err != nil {
		return nil, err
	}
	if len(scores) != f.g.NumItems() {
		return nil, fmt.Errorf("core: %s returned %d scores for %d items", f.name, len(scores), f.g.NumItems())
	}
	return scores, nil
}

// Recommend implements Recommender.
func (f *FuncRecommender) Recommend(u, k int) ([]Scored, error) {
	return recommendByScores(f, f.g, u, k)
}
