package core

import (
	"fmt"

	"longtailrec/internal/graph"
)

// ScoreFunc computes higher-is-better item scores for a user.
type ScoreFunc func(u int) ([]float64, error)

// FuncRecommender adapts any score function (LDA, PureSVD, DPPR, kNN,
// popularity, association rules, ...) to the Recommender interface, using
// the graph to exclude already-rated items from Recommend.
//
// The wrapped model scores the universe it was trained on, frozen at
// construction time. The graph, by contrast, is live and may grow: users
// admitted after construction are reported as ErrColdUser (the model has
// never seen them — the serving layer degrades to its popularity
// fallback), while users beyond even the live universe are out of range.
type FuncRecommender struct {
	name string
	g    *graph.Bipartite
	fn   ScoreFunc

	// snapUsers/snapItems are the model's universe: the graph's BASE
	// universe, i.e. the corpus it was built from. Construction may happen
	// lazily after the graph has already grown, so the live counts would
	// overstate what the model covers.
	snapUsers, snapItems int
}

// NewFuncRecommender wraps fn under the given algorithm name.
func NewFuncRecommender(name string, g *graph.Bipartite, fn ScoreFunc) (*FuncRecommender, error) {
	if name == "" {
		return nil, fmt.Errorf("core: empty recommender name")
	}
	if g == nil || fn == nil {
		return nil, fmt.Errorf("core: nil graph or score function")
	}
	return &FuncRecommender{
		name: name, g: g, fn: fn,
		snapUsers: g.BaseNumUsers(), snapItems: g.BaseNumItems(),
	}, nil
}

// Name implements Recommender.
func (f *FuncRecommender) Name() string { return f.name }

// ScoreItems implements Recommender.
func (f *FuncRecommender) ScoreItems(u int) ([]float64, error) {
	if err := validateUser(u, f.g.NumUsers()); err != nil {
		return nil, err
	}
	if u >= f.snapUsers {
		return nil, fmt.Errorf("%w: user %d joined after %s's model snapshot", ErrColdUser, u, f.name)
	}
	scores, err := f.fn(u)
	if err != nil {
		return nil, err
	}
	// Graph-backed score functions (DPPR, PPR, ...) may legitimately cover
	// items admitted after construction; model-backed ones cover exactly
	// the snapshot. Anything shorter is a contract violation.
	if len(scores) < f.snapItems {
		return nil, fmt.Errorf("core: %s returned %d scores for %d items", f.name, len(scores), f.snapItems)
	}
	return scores, nil
}

// Recommend implements Recommender — the legacy surface, a thin wrapper
// over the Request path so the adapter has exactly one selection loop.
func (f *FuncRecommender) Recommend(u, k int) ([]Scored, error) {
	resp, err := f.RecommendRequest(Request{User: u, K: k})
	if err != nil {
		return nil, err
	}
	return resp.Items, nil
}

// RecommendRequest implements RecommenderV2 for the score-function
// adapters: the wrapped model scores the full universe (checked against
// the request context first — these models can take tens of
// milliseconds), then the option filters are applied during top-k
// selection so an option-narrowed request still fills its K slots.
func (f *FuncRecommender) RecommendRequest(req Request) (Response, error) {
	if err := req.Validate(); err != nil {
		return Response{}, err
	}
	if err := req.err(); err != nil {
		return Response{}, fmt.Errorf("core: %s: %w", f.name, err)
	}
	scores, err := f.ScoreItems(req.User)
	if err != nil {
		return Response{}, err
	}
	if err := req.err(); err != nil {
		return Response{}, fmt.Errorf("core: %s: %w", f.name, err)
	}
	items, _ := f.g.UserItems(req.User)
	rated := make(map[int]struct{}, len(items))
	for _, i := range items {
		rated[i] = struct{}{}
	}
	var pop []int
	if req.LongTailOnly > 0 {
		pop = f.g.ItemPopularity()
	}
	return Response{
		Items: selectTopKFiltered(scores, req, rated, pop),
		Epoch: f.g.Epoch(),
		Algo:  f.name,
	}, nil
}
