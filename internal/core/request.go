// The first-class query surface: a Request carries everything one
// recommendation query needs — the user, the list size, a
// context.Context for cancellation/deadlines, and the per-request
// serving options a production edge wants to express (candidate
// filters, extra exclusions, long-tail-only mode, fallback policy) —
// and a Response carries the result plus its serving metadata (graph
// epoch, cache hit, fallback, resolved algorithm). Recommend(u, k) is
// kept everywhere as a thin compatibility wrapper over this path.

package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"slices"
	"strconv"

	"longtailrec/internal/topk"
)

// ErrInvalidOptions marks a Request whose option fields are malformed
// (e.g. a LongTailOnly percentile outside [0,1] or a negative item id).
// The HTTP layer maps it to 400.
var ErrInvalidOptions = errors.New("core: invalid request options")

// ErrOptionsUnsupported is returned when an option-carrying Request is
// routed to a Recommender that only implements the legacy
// Recommend(u, k) surface.
var ErrOptionsUnsupported = errors.New("core: recommender does not support per-request options")

// Request is one recommendation query. The zero value of every field
// beyond User and K is the legacy Recommend(u, k) query, and that
// no-options path stays on the allocation-disciplined fast path.
type Request struct {
	// Ctx cancels or deadlines the query: the walk engine checks it at
	// the subgraph-extraction boundaries and between τ sweeps, so an
	// abandoned request aborts mid-walk (its pooled scratch is returned
	// on every path). nil means context.Background() — no checks.
	Ctx context.Context
	// User is the query user index.
	User int
	// K is the list size. K <= 0 yields an empty list.
	K int
	// ExcludeItems are item indices to exclude beyond the user's rated
	// items (e.g. items already on screen). Order is irrelevant.
	ExcludeItems []int
	// CandidateItems restricts the result to this item set (e.g. an
	// in-stock or editorially-scoped slate). nil means the full catalog;
	// an empty non-nil slice yields an empty result.
	CandidateItems []int
	// LongTailOnly, when in (0,1], keeps only items at or below that
	// percentile of the live popularity distribution: 0.2 restricts the
	// list to the least-rated 20% of the catalog. 0 disables the filter.
	LongTailOnly float64
	// AllowFallback lets the serving layer (longtail.System, the HTTP
	// server) degrade a cold user to the deterministic popularity list
	// instead of failing. Recommenders themselves ignore it: fallback
	// needs the catalog-wide popularity ranking only the System holds.
	AllowFallback bool
}

// Response is the result of one Request.
type Response struct {
	// Items is the ranked list, best first. The caller owns the slice.
	Items []Scored
	// Fallback marks a degraded response: Items is the deterministic
	// popularity list because the algorithm could not anchor on the user.
	Fallback bool
	// Epoch is the graph epoch the result was computed (or cached) at.
	Epoch uint64
	// CacheHit reports whether the result came from the serving cache
	// (stored entry or a shared in-flight compute).
	CacheHit bool
	// Algo is the resolved algorithm name. Always non-empty on a served
	// response; batch paths use a zero Response to mark a cold user.
	Algo string
}

// RecommenderV2 is the context-aware query surface. All recommenders in
// this package implement it; the walk engine implements it natively.
type RecommenderV2 interface {
	Recommender
	// RecommendRequest serves one Request, honoring its context and
	// option fields.
	RecommendRequest(req Request) (Response, error)
}

// BatchRecommenderV2 is implemented by recommenders that serve many
// Requests concurrently (the walk recommenders via the pooled engine,
// and the caching wrapper).
type BatchRecommenderV2 interface {
	RecommenderV2
	// RecommendRequestBatch serves one Response per Request across up to
	// parallelism workers (<= 0 means GOMAXPROCS), honoring each
	// request's own context. Cold users yield a zero Response; any other
	// error — including a cancelled per-request context — aborts the
	// batch.
	RecommendRequestBatch(reqs []Request, parallelism int) ([]Response, error)
}

// Validate bounds-checks the option fields (LongTailOnly in [0,1] and
// not NaN, no negative item ids), wrapping failures in
// ErrInvalidOptions. Cheap (no allocation) for the no-options request;
// every RecommenderV2 implementation calls it, and serving layers may
// call it early to reject bad requests before resolving an algorithm.
func (r Request) Validate() error {
	if math.IsNaN(r.LongTailOnly) || r.LongTailOnly < 0 || r.LongTailOnly > 1 {
		return fmt.Errorf("%w: long-tail percentile %v outside [0,1]", ErrInvalidOptions, r.LongTailOnly)
	}
	for _, i := range r.ExcludeItems {
		if i < 0 {
			return fmt.Errorf("%w: negative excluded item %d", ErrInvalidOptions, i)
		}
	}
	for _, i := range r.CandidateItems {
		if i < 0 {
			return fmt.Errorf("%w: negative candidate item %d", ErrInvalidOptions, i)
		}
	}
	return nil
}

// HasOptions reports whether any result-shaping option is set (the
// context and fallback policy do not shape the personalized result) —
// the one definition of option presence, shared with the serving
// layer's fallback path.
func (r Request) HasOptions() bool {
	return len(r.ExcludeItems) > 0 || r.CandidateItems != nil || r.LongTailOnly > 0
}

// err returns the request context's error, nil when no context is set.
func (r Request) err() error {
	if r.Ctx == nil {
		return nil
	}
	return r.Ctx.Err()
}

// OptionsKey returns a canonical encoding of the result-shaping option
// set — the string the serving cache folds into its key so two requests
// with different options can never share an entry. It is exact (not a
// lossy hash): equal keys imply equal option semantics. Item lists are
// sorted and deduplicated, so {1,2} and {2,1,2} encode identically. The
// no-options request encodes as "" without allocating.
func (r Request) OptionsKey() string {
	if !r.HasOptions() {
		return ""
	}
	buf := make([]byte, 0, 16+8*(len(r.ExcludeItems)+len(r.CandidateItems)))
	appendIDs := func(tag byte, ids []int) {
		sorted := slices.Clone(ids)
		slices.Sort(sorted)
		sorted = slices.Compact(sorted)
		buf = append(buf, tag, ':')
		for j, id := range sorted {
			if j > 0 {
				buf = append(buf, ',')
			}
			buf = strconv.AppendInt(buf, int64(id), 10)
		}
		buf = append(buf, ';')
	}
	if len(r.ExcludeItems) > 0 {
		appendIDs('x', r.ExcludeItems)
	}
	if r.CandidateItems != nil {
		appendIDs('c', r.CandidateItems)
	}
	if r.LongTailOnly > 0 {
		buf = append(buf, 't', ':')
		buf = strconv.AppendFloat(buf, r.LongTailOnly, 'g', -1, 64)
		buf = append(buf, ';')
	}
	return string(buf)
}

// longTailCutoff returns the largest popularity an item may have while
// staying inside the pct percentile of the popularity distribution pop
// (ascending by value; ties share a bucket, so at least ceil(pct·n)
// items always qualify). scratch, when non-nil, is reused for the sort
// copy; the possibly-grown scratch is returned for pooling.
func longTailCutoff(pop []int, pct float64, scratch []int) (cutoff int, grown []int) {
	n := len(pop)
	if n == 0 {
		return 0, scratch
	}
	if cap(scratch) < n {
		scratch = make([]int, n, n+n/8)
	}
	scratch = scratch[:n]
	copy(scratch, pop)
	slices.Sort(scratch)
	idx := int(pct*float64(n)+0.999999) - 1 // ceil(pct·n)-1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return scratch[idx], scratch
}

// optionFilter builds the per-item predicate of a Request's
// result-shaping options — the single definition of what ExcludeItems,
// CandidateItems and LongTailOnly mean, shared by the adapter selection
// loop and the fallback post-filter (the engine has its own stamped,
// allocation-free equivalent). pop is the live popularity vector,
// consulted only when LongTailOnly is set.
func (r Request) optionFilter(pop []int) func(item int) bool {
	cutoff := 0
	if r.LongTailOnly > 0 {
		cutoff, _ = longTailCutoff(pop, r.LongTailOnly, nil)
	}
	var excluded, candidates map[int]struct{}
	if len(r.ExcludeItems) > 0 {
		excluded = make(map[int]struct{}, len(r.ExcludeItems))
		for _, i := range r.ExcludeItems {
			excluded[i] = struct{}{}
		}
	}
	if r.CandidateItems != nil {
		candidates = make(map[int]struct{}, len(r.CandidateItems))
		for _, i := range r.CandidateItems {
			candidates[i] = struct{}{}
		}
	}
	return func(i int) bool {
		if _, skip := excluded[i]; skip {
			return false
		}
		if r.CandidateItems != nil {
			if _, ok := candidates[i]; !ok {
				return false
			}
		}
		if r.LongTailOnly > 0 && i < len(pop) && pop[i] > cutoff {
			return false
		}
		return true
	}
}

// FilterScored applies a Request's result-shaping options to an
// already-ranked list — the post-filter for lists produced outside a
// RecommenderV2 (the popularity fallback). Order is preserved; the
// returned slice is freshly allocated.
func FilterScored(items []Scored, req Request, pop []int) []Scored {
	pass := req.optionFilter(pop)
	out := make([]Scored, 0, len(items))
	for _, it := range items {
		if pass(it.Item) {
			out = append(out, it)
		}
	}
	return out
}

// selectTopKFiltered ranks a full-universe score vector under a
// Request's option filters — the shared selection loop of the
// score-function adapters. rated is the user's rated-item set (always
// excluded).
func selectTopKFiltered(scores []float64, req Request, rated map[int]struct{}, pop []int) []Scored {
	pass := req.optionFilter(pop)
	sel := topk.NewSelector(req.K)
	for i, s := range scores {
		if math.IsNaN(s) || math.IsInf(s, -1) {
			continue
		}
		if _, skip := rated[i]; skip {
			continue
		}
		if !pass(i) {
			continue
		}
		sel.Offer(i, s)
	}
	items := sel.Take()
	out := make([]Scored, len(items))
	for i, it := range items {
		out[i] = Scored{Item: it.ID, Score: it.Score}
	}
	return out
}

// RecommendRequest serves one Request through r: natively when r
// implements RecommenderV2, otherwise by delegating option-free
// requests to the legacy Recommend (option-carrying requests fail with
// ErrOptionsUnsupported — the legacy surface has no way to honor them).
func RecommendRequest(r Recommender, req Request) (Response, error) {
	if v2, ok := r.(RecommenderV2); ok {
		return v2.RecommendRequest(req)
	}
	if err := req.Validate(); err != nil {
		return Response{}, err
	}
	if err := req.err(); err != nil {
		return Response{}, fmt.Errorf("core: %s: %w", r.Name(), err)
	}
	if req.HasOptions() {
		return Response{}, fmt.Errorf("%w: %s", ErrOptionsUnsupported, r.Name())
	}
	items, err := r.Recommend(req.User, req.K)
	if err != nil {
		return Response{}, err
	}
	return Response{Items: items, Algo: r.Name()}, nil
}

// BatchRecommendRequests serves a Request slice through r: concurrently
// when r implements BatchRecommenderV2, otherwise by a sequential loop
// (the safe default for adapters whose models make no concurrency
// promise). Cold users yield a zero Response; any other error aborts
// the batch. Each request's own context is honored.
func BatchRecommendRequests(r Recommender, reqs []Request, parallelism int) ([]Response, error) {
	if br, ok := r.(BatchRecommenderV2); ok {
		return br.RecommendRequestBatch(reqs, parallelism)
	}
	out := make([]Response, len(reqs))
	for i, req := range reqs {
		resp, err := RecommendRequest(r, req)
		if err != nil {
			if errors.Is(err, ErrColdUser) {
				continue
			}
			return nil, fmt.Errorf("core: batch user %d: %w", req.User, err)
		}
		out[i] = resp
	}
	return out, nil
}

// PlainRequests builds the option-free Request list a legacy (users, k)
// batch call maps to — one definition of the compatibility shape shared
// by every RecommendBatch wrapper.
func PlainRequests(users []int, k int) []Request {
	reqs := make([]Request, len(users))
	for i, u := range users {
		reqs[i] = Request{User: u, K: k}
	}
	return reqs
}

// ResponseItems strips a Response batch down to its item lists — nil
// entries for cold (zero) Responses — matching the legacy [][]Scored
// batch contract.
func ResponseItems(resps []Response) [][]Scored {
	out := make([][]Scored, len(resps))
	for i, resp := range resps {
		out[i] = resp.Items
	}
	return out
}

// SameOptionStorage reports whether two requests carry identical option
// storage — the common batch shape, one template fanned across users —
// letting batch loops validate and canonically encode the option set
// once instead of per user.
func SameOptionStorage(a, b Request) bool {
	return a.LongTailOnly == b.LongTailOnly &&
		sameIntSlice(a.ExcludeItems, b.ExcludeItems) &&
		sameIntSlice(a.CandidateItems, b.CandidateItems)
}

// sameIntSlice reports whether two slices are the same storage (same
// length and, when non-empty, same backing array start; empty slices
// must agree on nil-ness, which OptionsKey distinguishes for
// CandidateItems).
func sameIntSlice(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) == 0 {
		return (a == nil) == (b == nil)
	}
	return &a[0] == &b[0]
}
