// The revalidating result cache in front of any Recommender — the
// serving-layer half of the live-update design. Cached results are keyed
// by (user, algorithm, k, option set) and carry their dependency
// fingerprint: the graph epoch they were built at plus (for walk
// recommenders) a write-generation watermark and a bloom filter of the
// extracted subgraph's node ids. A lookup whose epoch moved is not
// automatically a miss anymore: the entry revalidates by scanning the
// graph's write journal for touches inside its bloom
// (graph.CheckFingerprint), so a write to user A leaves user B's entry
// alive unless B's subgraph plausibly contains a touched node. Entries
// without a usable fingerprint (non-walk recommenders, long-tail-only
// requests whose cutoff depends on the global popularity vector) fall
// back to exact epoch matching — the old behavior. Two requests that
// differ only in per-request options (candidate filters, exclusions,
// long-tail mode) can never share an entry — the option set is folded
// into the key as its exact canonical encoding (Request.OptionsKey).
// Repeat queries for an unchanged graph are served in O(1), and a
// thundering herd on one user computes once (singleflight).

package core

import (
	"context"
	"errors"
	"fmt"

	"longtailrec/internal/cache"
	"longtailrec/internal/graph"
)

// EpochSource exposes the current graph epoch. *graph.Bipartite satisfies
// it; tests can substitute a counter.
type EpochSource interface {
	Epoch() uint64
}

// FingerprintSource extends EpochSource with journal-backed fingerprint
// revalidation. *graph.Bipartite satisfies it; sources that don't are
// validated epoch-exactly.
type FingerprintSource interface {
	EpochSource
	CheckFingerprint(*graph.Fingerprint) graph.FingerprintStatus
}

// CacheEntry is one stored recommendation result plus the freshness
// evidence needed to revalidate it: the epoch read BEFORE its compute
// started (so an entry computed while a write landed can only be served
// epoch-exactly while that pre-compute epoch still stands — exactly the
// guarantee the old epoch-in-the-key design gave) and the walk's
// dependency fingerprint (invalid when the producing path can't
// fingerprint, e.g. non-walk recommenders or long-tail-only requests).
type CacheEntry struct {
	Resp       Response
	FP         graph.Fingerprint
	BuildEpoch uint64
}

// EntryValidator builds the cache validate function for entries served
// against src: epoch unchanged → fresh; otherwise the entry's
// fingerprint is checked against the source's write journal when both
// sides support it, and anything unprovable is stale. Used by
// CachedRecommender on every lookup and by the fleet's revalidation
// sweep (shard.Fleet.EvictStale) — validation is graph-level, not
// algorithm-level, so one validator serves every algorithm sharing a
// graph view.
func EntryValidator(src EpochSource) func(*CacheEntry) cache.Verdict {
	fps, _ := src.(FingerprintSource)
	return func(e *CacheEntry) cache.Verdict {
		if e.BuildEpoch == src.Epoch() {
			return cache.VerdictFresh
		}
		if fps == nil || !e.FP.Valid() {
			return cache.VerdictStale
		}
		switch fps.CheckFingerprint(&e.FP) {
		case graph.FingerprintFresh:
			return cache.VerdictFreshValidated
		case graph.FingerprintOverflow:
			return cache.VerdictStaleOverflow
		default:
			return cache.VerdictStaleFingerprint
		}
	}
}

// ServingStats is the live-serving state the HTTP layer reports on
// /v1/stats: where the write stream stands and how effective the result
// caching is, fleet-wide plus a per-shard breakdown.
type ServingStats struct {
	// Epoch is the fleet-wide epoch: total accepted live writes since
	// construction, summed across shards (with one shard, the graph
	// epoch exactly as before).
	Epoch uint64
	// PendingWrites is how many writes sit in the shards' delta
	// overlays, not yet compacted into their CSRs.
	PendingWrites int
	// CacheEnabled reports whether result caches are configured.
	CacheEnabled bool
	// Cache holds the result-cache counters summed across shards (zero
	// when disabled).
	Cache cache.Stats
	// Shards is the per-shard breakdown, indexed by shard — always
	// populated (length 1 for the single-replica stack). Each shard's
	// epoch and cache counters move independently: a write invalidates
	// only its own shard's cached results.
	Shards []ShardStats
	// Durability reports where the write-ahead log stands (zero value
	// when the stack runs without one).
	Durability DurabilityStats
}

// DurabilityStats is the write-ahead-log slice of ServingStats: whether
// writes are durable, how far durability has advanced, and how much is
// in flight.
type DurabilityStats struct {
	// Enabled reports whether a write-ahead log backs live writes.
	Enabled bool
	// DurableSeq is the global sequence number of the next record to be
	// logged; every accepted write below it is fsync'd (in the log or
	// folded into the last checkpoint).
	DurableSeq uint64
	// PendingBatch is how many submitted writes await their group-commit
	// batch — acknowledged to no one yet.
	PendingBatch int
	// LastCheckpointEpoch is the fleet-wide epoch at the moment the most
	// recent checkpoint was written (zero before the first one).
	LastCheckpointEpoch uint64
}

// ShardStats is one serving replica's slice of ServingStats: its own
// epoch, pending writes, live universe and cache counters.
type ShardStats struct {
	// Shard is the replica's index (the value shard.Assign routes to).
	Shard int
	// Epoch is this shard's graph epoch (accepted writes routed here).
	Epoch uint64
	// PendingWrites is this shard's uncompacted delta-overlay writes.
	PendingWrites int
	// NumUsers/NumItems are this shard's live universe sizes; shards
	// diverge as auto-grow admissions land on the written shard only.
	NumUsers, NumItems int
	// CacheEnabled reports whether this shard has a result cache.
	CacheEnabled bool
	// Cache holds this shard's result-cache counters (zero when
	// disabled).
	Cache cache.Stats
}

// fingerprintRecommender is the fingerprint production path the walk
// recommenders implement: RecommendRequest also reporting the query's
// dependency fingerprint.
type fingerprintRecommender interface {
	RecommendRequestFP(req Request) (Response, graph.Fingerprint, error)
}

// fingerprintBatchRecommender is the batch counterpart.
type fingerprintBatchRecommender interface {
	RecommendRequestBatchFP(reqs []Request, parallelism int) ([]Response, []graph.Fingerprint, error)
}

// CachedRecommender wraps a Recommender with a revalidating result cache
// (see the package comment above and EntryValidator). Recommend and
// RecommendRequest consult the cache; ScoreItems (a full-universe
// diagnostic vector) always recomputes. Safe for concurrent use when the
// inner recommender is.
type CachedRecommender struct {
	inner  Recommender
	epochs EpochSource
	cache  *cache.Cache[CacheEntry]
	// validate is the entry validator bound to epochs, built once at
	// construction (one closure for the recommender's lifetime — none per
	// lookup).
	validate func(*CacheEntry) cache.Verdict
	// fpInner / fpBatchInner are inner's fingerprint production paths when
	// it has them (the walk recommenders do); nil means entries store no
	// fingerprint and revalidate epoch-exactly.
	fpInner      fingerprintRecommender
	fpBatchInner fingerprintBatchRecommender
}

// NewCachedRecommender builds the caching wrapper. The cache may be shared
// across many wrapped algorithms: keys include the algorithm name, and
// revalidation is graph-level, so algorithms sharing a graph view share
// the validator's verdicts.
func NewCachedRecommender(inner Recommender, epochs EpochSource, c *cache.Cache[CacheEntry]) (*CachedRecommender, error) {
	if inner == nil || epochs == nil || c == nil {
		return nil, fmt.Errorf("core: NewCachedRecommender needs inner, epochs and cache")
	}
	r := &CachedRecommender{inner: inner, epochs: epochs, cache: c, validate: EntryValidator(epochs)}
	r.fpInner, _ = inner.(fingerprintRecommender)
	r.fpBatchInner, _ = inner.(fingerprintBatchRecommender)
	return r, nil
}

// Name implements Recommender.
func (r *CachedRecommender) Name() string { return r.inner.Name() }

// Inner returns the wrapped recommender.
func (r *CachedRecommender) Inner() Recommender { return r.inner }

// ScoreItems delegates to the wrapped recommender uncached.
func (r *CachedRecommender) ScoreItems(u int) ([]float64, error) {
	return r.inner.ScoreItems(u)
}

// ScoreItemsCompact delegates to the wrapped recommender's compact scoring
// path when it has one (the walk recommenders do).
func (r *CachedRecommender) ScoreItemsCompact(u int) ([]ItemScore, error) {
	if c, ok := r.inner.(interface {
		ScoreItemsCompact(u int) ([]ItemScore, error)
	}); ok {
		return c.ScoreItemsCompact(u)
	}
	return nil, fmt.Errorf("core: %s has no compact scoring path", r.inner.Name())
}

// key builds the cache key for one request, with the option set already
// canonically encoded. Freshness is NOT part of the key (entries
// revalidate on lookup); the request's context and fallback policy are
// deliberately absent too: neither shapes the personalized result
// (fallback is applied — and never cached — above this layer).
func (r *CachedRecommender) key(req Request, opts string) cache.Key {
	return cache.Key{
		User: req.User,
		Algo: r.inner.Name(),
		K:    req.K,
		Opts: opts,
	}
}

// computeEntry runs one cache-miss compute, producing the storable entry:
// the epoch is read BEFORE the compute starts (see CacheEntry), and the
// fingerprint path is used when inner has one and the request's result
// depends only on its subgraph — a long-tail-only cutoff reads the
// GLOBAL popularity vector, which any write anywhere can shift, so those
// entries stay epoch-exact.
func (r *CachedRecommender) computeEntry(req Request) (CacheEntry, error) {
	ent := CacheEntry{BuildEpoch: r.epochs.Epoch()}
	if r.fpInner != nil && req.LongTailOnly == 0 {
		resp, fp, err := r.fpInner.RecommendRequestFP(req)
		if err != nil {
			return CacheEntry{}, err
		}
		ent.Resp, ent.FP = resp, fp
		return ent, nil
	}
	resp, err := RecommendRequest(r.inner, req)
	if err != nil {
		return CacheEntry{}, err
	}
	ent.Resp = resp
	return ent, nil
}

// shareResponse copies a cached Response for one caller (the caller may
// mutate Items) and stamps the serving metadata for this lookup.
func shareResponse(v Response, epoch uint64, hit bool) Response {
	items := make([]Scored, len(v.Items))
	copy(items, v.Items)
	v.Items = items
	v.Epoch = epoch
	v.CacheHit = hit
	return v
}

// RecommendRequest implements RecommenderV2. On a hit the cached
// Response is returned (Items copied, so the caller may mutate them,
// CacheHit set); a hit is a stored entry the validator rules fresh —
// epoch unchanged, or proven untouched by its subgraph fingerprint. On a
// miss the inner recommender runs exactly once per (user, k, option set)
// regardless of concurrency. Errors — including ErrColdUser and a
// cancelled request context — are never cached.
//
// The singleflight leader computes under its own request context, so a
// leader that disconnects mid-walk aborts the shared compute. A
// piggybacked waiter is insulated in both directions: a waiter whose
// own context is cancelled stops waiting immediately with its own
// context error (cache.DoCtx), and a live waiter handed a dead
// leader's context error retries the lookup (becoming the new leader
// or joining a healthier flight) — one impatient client cannot poison
// a patient one. The retry is bounded.
func (r *CachedRecommender) RecommendRequest(req Request) (Response, error) {
	if err := req.Validate(); err != nil {
		return Response{}, err
	}
	key := r.key(req, req.OptionsKey())
	// Serve under the epoch of the original lookup even across retries —
	// the same stamp the old epoch-keyed design put on hits and misses.
	epoch := r.epochs.Epoch()
	for attempt := 0; ; attempt++ {
		v, fromCache, err := r.cache.DoCtx(req.Ctx, key, r.validate, func() (CacheEntry, error) {
			return r.computeEntry(req)
		})
		if err != nil {
			// A context error surfaced by a shared flight belongs to the
			// flight's leader; if OUR context is live, try again — and
			// after repeatedly joining doomed flights, compute directly so
			// a patient caller is never failed by impatient strangers.
			if fromCache && isContextErr(err) && req.err() == nil {
				if attempt < 2 {
					continue
				}
				ent, cerr := r.computeEntry(req)
				if cerr != nil {
					return Response{}, cerr
				}
				r.cache.Put(key, ent)
				return shareResponse(ent.Resp, epoch, false), nil
			}
			return Response{}, err
		}
		return shareResponse(v.Resp, epoch, fromCache), nil
	}
}

// isContextErr reports whether err is a context cancellation/deadline.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Recommend implements Recommender — the legacy surface as a thin
// wrapper over the Request path (same cache keys as before: the
// no-options request encodes an empty option set).
func (r *CachedRecommender) Recommend(u, k int) ([]Scored, error) {
	resp, err := r.RecommendRequest(Request{User: u, K: k})
	if err != nil {
		return nil, err
	}
	return resp.Items, nil
}

// RecommendRequestBatch implements BatchRecommenderV2: cached requests
// are served directly (after revalidation), the misses go through the
// inner recommender's batch path in one call, and their results —
// fingerprinted when the inner batch path can — are stored for the next
// batch. The epoch is read once at batch start so every served Response
// carries one consistent stamp; BuildEpoch for stored misses is read
// per-store just before the batch compute ran, preserving the
// entry-only-served-while-provably-fresh contract. Cold users yield zero
// Responses and are not cached.
func (r *CachedRecommender) RecommendRequestBatch(reqs []Request, parallelism int) ([]Response, error) {
	epoch := r.epochs.Epoch()
	out := make([]Response, len(reqs))
	keys := make([]cache.Key, len(reqs))
	var missIdx []int
	var opts string
	for i, req := range reqs {
		// Batches usually fan one option template across users: validate
		// and canonically encode the option storage once per distinct
		// template instead of re-scanning it per user.
		if i == 0 || !SameOptionStorage(req, reqs[i-1]) {
			if err := req.Validate(); err != nil {
				return nil, err
			}
			opts = req.OptionsKey()
		}
		keys[i] = r.key(req, opts)
		if v, ok := r.cache.GetValidated(keys[i], r.validate); ok {
			out[i] = shareResponse(v.Resp, epoch, true)
			continue
		}
		missIdx = append(missIdx, i)
	}
	if len(missIdx) == 0 {
		return out, nil
	}
	missing := make([]Request, len(missIdx))
	for j, i := range missIdx {
		missing[j] = reqs[i]
	}
	// BuildEpoch for the whole miss set: read before the computes start.
	buildEpoch := r.epochs.Epoch()
	var computed []Response
	var fps []graph.Fingerprint
	var err error
	if r.fpBatchInner != nil {
		computed, fps, err = r.fpBatchInner.RecommendRequestBatchFP(missing, parallelism)
	} else {
		computed, err = BatchRecommendRequests(r.inner, missing, parallelism)
	}
	if err != nil {
		return nil, err
	}
	for j, i := range missIdx {
		resp := computed[j]
		if resp.Algo == "" {
			continue // cold user: keep the zero entry, cache nothing
		}
		stored := resp
		stored.Items = make([]Scored, len(resp.Items))
		copy(stored.Items, resp.Items)
		ent := CacheEntry{Resp: stored, BuildEpoch: buildEpoch}
		// The long-tail cutoff depends on the global popularity vector, so
		// those entries revalidate epoch-exactly (see computeEntry).
		if fps != nil && reqs[i].LongTailOnly == 0 {
			ent.FP = fps[j]
		}
		r.cache.Put(keys[i], ent)
		resp.Epoch = epoch
		out[i] = resp
	}
	return out, nil
}

// RecommendBatch implements BatchRecommender — the legacy batch surface
// as a thin wrapper over RecommendRequestBatch. Cold users yield nil
// entries, matching the historical contract.
func (r *CachedRecommender) RecommendBatch(users []int, k, parallelism int) ([][]Scored, error) {
	resps, err := r.RecommendRequestBatch(PlainRequests(users, k), parallelism)
	if err != nil {
		return nil, err
	}
	return ResponseItems(resps), nil
}

// CacheStats returns the underlying cache counters.
func (r *CachedRecommender) CacheStats() cache.Stats { return r.cache.Stats() }
