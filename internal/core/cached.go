// The epoch-invalidated result cache in front of any Recommender — the
// serving-layer half of the live-update design. The graph carries a
// monotonically increasing epoch (bumped on every accepted live write);
// cached results are keyed by (user, algorithm, k, epoch, option set),
// so a write makes every earlier entry unreachable without any lock
// handshake between the writer and the cache, and two requests that
// differ only in per-request options (candidate filters, exclusions,
// long-tail mode) can never share an entry — the option set is folded
// into the key as its exact canonical encoding (Request.OptionsKey).
// Repeat queries for an unchanged graph are served in O(1), and a
// thundering herd on one user computes once (singleflight).

package core

import (
	"context"
	"errors"
	"fmt"

	"longtailrec/internal/cache"
)

// EpochSource exposes the current graph epoch. *graph.Bipartite satisfies
// it; tests can substitute a counter.
type EpochSource interface {
	Epoch() uint64
}

// ServingStats is the live-serving state the HTTP layer reports on
// /v1/stats: where the write stream stands and how effective the result
// caching is, fleet-wide plus a per-shard breakdown.
type ServingStats struct {
	// Epoch is the fleet-wide epoch: total accepted live writes since
	// construction, summed across shards (with one shard, the graph
	// epoch exactly as before).
	Epoch uint64
	// PendingWrites is how many writes sit in the shards' delta
	// overlays, not yet compacted into their CSRs.
	PendingWrites int
	// CacheEnabled reports whether result caches are configured.
	CacheEnabled bool
	// Cache holds the result-cache counters summed across shards (zero
	// when disabled).
	Cache cache.Stats
	// Shards is the per-shard breakdown, indexed by shard — always
	// populated (length 1 for the single-replica stack). Each shard's
	// epoch and cache counters move independently: a write invalidates
	// only its own shard's cached results.
	Shards []ShardStats
	// Durability reports where the write-ahead log stands (zero value
	// when the stack runs without one).
	Durability DurabilityStats
}

// DurabilityStats is the write-ahead-log slice of ServingStats: whether
// writes are durable, how far durability has advanced, and how much is
// in flight.
type DurabilityStats struct {
	// Enabled reports whether a write-ahead log backs live writes.
	Enabled bool
	// DurableSeq is the global sequence number of the next record to be
	// logged; every accepted write below it is fsync'd (in the log or
	// folded into the last checkpoint).
	DurableSeq uint64
	// PendingBatch is how many submitted writes await their group-commit
	// batch — acknowledged to no one yet.
	PendingBatch int
	// LastCheckpointEpoch is the fleet-wide epoch at the moment the most
	// recent checkpoint was written (zero before the first one).
	LastCheckpointEpoch uint64
}

// ShardStats is one serving replica's slice of ServingStats: its own
// epoch, pending writes, live universe and cache counters.
type ShardStats struct {
	// Shard is the replica's index (the value shard.Assign routes to).
	Shard int
	// Epoch is this shard's graph epoch (accepted writes routed here).
	Epoch uint64
	// PendingWrites is this shard's uncompacted delta-overlay writes.
	PendingWrites int
	// NumUsers/NumItems are this shard's live universe sizes; shards
	// diverge as auto-grow admissions land on the written shard only.
	NumUsers, NumItems int
	// CacheEnabled reports whether this shard has a result cache.
	CacheEnabled bool
	// Cache holds this shard's result-cache counters (zero when
	// disabled).
	Cache cache.Stats
}

// CachedRecommender wraps a Recommender with an epoch-invalidated result
// cache. Recommend and RecommendRequest consult the cache; ScoreItems (a
// full-universe diagnostic vector) always recomputes. Safe for concurrent
// use when the inner recommender is.
type CachedRecommender struct {
	inner  Recommender
	epochs EpochSource
	cache  *cache.Cache[Response]
}

// NewCachedRecommender builds the caching wrapper. The cache may be shared
// across many wrapped algorithms: keys include the algorithm name.
func NewCachedRecommender(inner Recommender, epochs EpochSource, c *cache.Cache[Response]) (*CachedRecommender, error) {
	if inner == nil || epochs == nil || c == nil {
		return nil, fmt.Errorf("core: NewCachedRecommender needs inner, epochs and cache")
	}
	return &CachedRecommender{inner: inner, epochs: epochs, cache: c}, nil
}

// Name implements Recommender.
func (r *CachedRecommender) Name() string { return r.inner.Name() }

// Inner returns the wrapped recommender.
func (r *CachedRecommender) Inner() Recommender { return r.inner }

// ScoreItems delegates to the wrapped recommender uncached.
func (r *CachedRecommender) ScoreItems(u int) ([]float64, error) {
	return r.inner.ScoreItems(u)
}

// ScoreItemsCompact delegates to the wrapped recommender's compact scoring
// path when it has one (the walk recommenders do).
func (r *CachedRecommender) ScoreItemsCompact(u int) ([]ItemScore, error) {
	if c, ok := r.inner.(interface {
		ScoreItemsCompact(u int) ([]ItemScore, error)
	}); ok {
		return c.ScoreItemsCompact(u)
	}
	return nil, fmt.Errorf("core: %s has no compact scoring path", r.inner.Name())
}

// key builds the cache key for one request at the given epoch, with the
// option set already canonically encoded. The request's context and
// fallback policy are deliberately NOT part of the key: neither shapes
// the personalized result (fallback is applied — and never cached —
// above this layer).
func (r *CachedRecommender) key(req Request, epoch uint64, opts string) cache.Key {
	return cache.Key{
		User:  req.User,
		Algo:  r.inner.Name(),
		K:     req.K,
		Epoch: epoch,
		Opts:  opts,
	}
}

// shareResponse copies a cached Response for one caller (the caller may
// mutate Items) and stamps the serving metadata for this lookup.
func shareResponse(v Response, epoch uint64, hit bool) Response {
	items := make([]Scored, len(v.Items))
	copy(items, v.Items)
	v.Items = items
	v.Epoch = epoch
	v.CacheHit = hit
	return v
}

// RecommendRequest implements RecommenderV2. On a hit the cached
// Response is returned (Items copied, so the caller may mutate them,
// CacheHit set); on a miss the inner recommender runs exactly once per
// (user, k, epoch, option set) regardless of concurrency. Errors —
// including ErrColdUser and a cancelled request context — are never
// cached.
//
// The singleflight leader computes under its own request context, so a
// leader that disconnects mid-walk aborts the shared compute. A
// piggybacked waiter is insulated in both directions: a waiter whose
// own context is cancelled stops waiting immediately with its own
// context error (cache.DoCtx), and a live waiter handed a dead
// leader's context error retries the lookup (becoming the new leader
// or joining a healthier flight) — one impatient client cannot poison
// a patient one. The retry is bounded.
func (r *CachedRecommender) RecommendRequest(req Request) (Response, error) {
	if err := req.Validate(); err != nil {
		return Response{}, err
	}
	key := r.key(req, r.epochs.Epoch(), req.OptionsKey())
	for attempt := 0; ; attempt++ {
		// Key the entry at the epoch of the original lookup even across
		// retries: a concurrent write already invalidates it naturally.
		v, fromCache, err := r.cache.DoCtx(req.Ctx, key, func() (Response, error) {
			return RecommendRequest(r.inner, req)
		})
		if err != nil {
			// A context error surfaced by a shared flight belongs to the
			// flight's leader; if OUR context is live, try again — and
			// after repeatedly joining doomed flights, compute directly so
			// a patient caller is never failed by impatient strangers.
			if fromCache && isContextErr(err) && req.err() == nil {
				if attempt < 2 {
					continue
				}
				v, cerr := RecommendRequest(r.inner, req)
				if cerr != nil {
					return Response{}, cerr
				}
				stored := v
				stored.Items = make([]Scored, len(v.Items))
				copy(stored.Items, v.Items)
				r.cache.Put(key, stored)
				return shareResponse(stored, key.Epoch, false), nil
			}
			return Response{}, err
		}
		return shareResponse(v, key.Epoch, fromCache), nil
	}
}

// isContextErr reports whether err is a context cancellation/deadline.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Recommend implements Recommender — the legacy surface as a thin
// wrapper over the Request path (same cache keys as before: the
// no-options request encodes an empty option set).
func (r *CachedRecommender) Recommend(u, k int) ([]Scored, error) {
	resp, err := r.RecommendRequest(Request{User: u, K: k})
	if err != nil {
		return nil, err
	}
	return resp.Items, nil
}

// RecommendRequestBatch implements BatchRecommenderV2: cached requests
// are served directly, the misses go through the inner recommender's
// batch path in one call, and their results are stored for the next
// batch. The epoch is read once at batch start so every lookup and
// store uses one consistent key; note this keys the cache, it does not
// pin the graph — misses computed while a write lands reflect the newer
// graph (and are stored under the start epoch, where they age out on
// the next bump). Cold users yield zero Responses and are not cached.
func (r *CachedRecommender) RecommendRequestBatch(reqs []Request, parallelism int) ([]Response, error) {
	epoch := r.epochs.Epoch()
	out := make([]Response, len(reqs))
	keys := make([]cache.Key, len(reqs))
	var missIdx []int
	var opts string
	for i, req := range reqs {
		// Batches usually fan one option template across users: validate
		// and canonically encode the option storage once per distinct
		// template instead of re-scanning it per user.
		if i == 0 || !SameOptionStorage(req, reqs[i-1]) {
			if err := req.Validate(); err != nil {
				return nil, err
			}
			opts = req.OptionsKey()
		}
		keys[i] = r.key(req, epoch, opts)
		if v, ok := r.cache.Get(keys[i]); ok {
			out[i] = shareResponse(v, epoch, true)
			continue
		}
		missIdx = append(missIdx, i)
	}
	if len(missIdx) == 0 {
		return out, nil
	}
	missing := make([]Request, len(missIdx))
	for j, i := range missIdx {
		missing[j] = reqs[i]
	}
	computed, err := BatchRecommendRequests(r.inner, missing, parallelism)
	if err != nil {
		return nil, err
	}
	for j, i := range missIdx {
		resp := computed[j]
		if resp.Algo == "" {
			continue // cold user: keep the zero entry, cache nothing
		}
		stored := resp
		stored.Items = make([]Scored, len(resp.Items))
		copy(stored.Items, resp.Items)
		r.cache.Put(keys[i], stored)
		resp.Epoch = epoch
		out[i] = resp
	}
	return out, nil
}

// RecommendBatch implements BatchRecommender — the legacy batch surface
// as a thin wrapper over RecommendRequestBatch. Cold users yield nil
// entries, matching the historical contract.
func (r *CachedRecommender) RecommendBatch(users []int, k, parallelism int) ([][]Scored, error) {
	resps, err := r.RecommendRequestBatch(PlainRequests(users, k), parallelism)
	if err != nil {
		return nil, err
	}
	return ResponseItems(resps), nil
}

// CacheStats returns the underlying cache counters.
func (r *CachedRecommender) CacheStats() cache.Stats { return r.cache.Stats() }
