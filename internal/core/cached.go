// The epoch-invalidated result cache in front of any Recommender — the
// serving-layer half of the live-update design. The graph carries a
// monotonically increasing epoch (bumped on every accepted live write);
// cached results are keyed by (user, algorithm, k, epoch), so a write
// makes every earlier entry unreachable without any lock handshake
// between the writer and the cache. Repeat queries for an unchanged graph
// are served in O(1), and a thundering herd on one user computes once
// (singleflight).

package core

import (
	"fmt"

	"longtailrec/internal/cache"
)

// EpochSource exposes the current graph epoch. *graph.Bipartite satisfies
// it; tests can substitute a counter.
type EpochSource interface {
	Epoch() uint64
}

// ServingStats is the live-serving state the HTTP layer reports on
// /v1/stats: where the graph's write stream stands and how effective the
// result cache is.
type ServingStats struct {
	// Epoch is the graph epoch (accepted live writes since construction).
	Epoch uint64
	// PendingWrites is how many writes sit in the graph's delta overlay,
	// not yet compacted into the CSR.
	PendingWrites int
	// CacheEnabled reports whether a result cache is configured.
	CacheEnabled bool
	// Cache holds the result-cache counters (zero when disabled).
	Cache cache.Stats
}

// CachedRecommender wraps a Recommender with an epoch-invalidated result
// cache. Recommend and RecommendBatch consult the cache; ScoreItems (a
// full-universe diagnostic vector) always recomputes. Safe for concurrent
// use when the inner recommender is.
type CachedRecommender struct {
	inner  Recommender
	epochs EpochSource
	cache  *cache.Cache[[]Scored]
}

// NewCachedRecommender builds the caching wrapper. The cache may be shared
// across many wrapped algorithms: keys include the algorithm name.
func NewCachedRecommender(inner Recommender, epochs EpochSource, c *cache.Cache[[]Scored]) (*CachedRecommender, error) {
	if inner == nil || epochs == nil || c == nil {
		return nil, fmt.Errorf("core: NewCachedRecommender needs inner, epochs and cache")
	}
	return &CachedRecommender{inner: inner, epochs: epochs, cache: c}, nil
}

// Name implements Recommender.
func (r *CachedRecommender) Name() string { return r.inner.Name() }

// Inner returns the wrapped recommender.
func (r *CachedRecommender) Inner() Recommender { return r.inner }

// ScoreItems delegates to the wrapped recommender uncached.
func (r *CachedRecommender) ScoreItems(u int) ([]float64, error) {
	return r.inner.ScoreItems(u)
}

// ScoreItemsCompact delegates to the wrapped recommender's compact scoring
// path when it has one (the walk recommenders do).
func (r *CachedRecommender) ScoreItemsCompact(u int) ([]ItemScore, error) {
	if c, ok := r.inner.(interface {
		ScoreItemsCompact(u int) ([]ItemScore, error)
	}); ok {
		return c.ScoreItemsCompact(u)
	}
	return nil, fmt.Errorf("core: %s has no compact scoring path", r.inner.Name())
}

// key builds the cache key for one query at the given epoch.
func (r *CachedRecommender) key(u, k int, epoch uint64) cache.Key {
	return cache.Key{User: u, Algo: r.inner.Name(), K: k, Epoch: epoch}
}

// Recommend implements Recommender. On a hit the cached list is returned
// (copied, so the caller may mutate it); on a miss the inner recommender
// runs exactly once per (user, k, epoch) regardless of concurrency.
// Errors — including ErrColdUser — are never cached.
func (r *CachedRecommender) Recommend(u, k int) ([]Scored, error) {
	key := r.key(u, k, r.epochs.Epoch())
	v, _, err := r.cache.Do(key, func() ([]Scored, error) {
		return r.inner.Recommend(u, k)
	})
	if err != nil {
		return nil, err
	}
	out := make([]Scored, len(v))
	copy(out, v)
	return out, nil
}

// RecommendBatch implements BatchRecommender: cached users are served
// directly, the misses go through the inner recommender's batch path in
// one call, and their results are stored for the next batch. The epoch is
// read once at batch start so every lookup and store uses one consistent
// key; note this keys the cache, it does not pin the graph — misses
// computed while a write lands reflect the newer graph (and are stored
// under the start epoch, where they age out on the next bump). Cold users
// yield nil entries and are not cached.
func (r *CachedRecommender) RecommendBatch(users []int, k, parallelism int) ([][]Scored, error) {
	epoch := r.epochs.Epoch()
	out := make([][]Scored, len(users))
	var missIdx []int
	for i, u := range users {
		if v, ok := r.cache.Get(r.key(u, k, epoch)); ok {
			recs := make([]Scored, len(v))
			copy(recs, v)
			out[i] = recs
			continue
		}
		missIdx = append(missIdx, i)
	}
	if len(missIdx) == 0 {
		return out, nil
	}
	missing := make([]int, len(missIdx))
	for j, i := range missIdx {
		missing[j] = users[i]
	}
	computed, err := BatchRecommend(r.inner, missing, k, parallelism)
	if err != nil {
		return nil, err
	}
	for j, i := range missIdx {
		recs := computed[j]
		if recs == nil {
			continue // cold user: keep the nil entry, cache nothing
		}
		stored := make([]Scored, len(recs))
		copy(stored, recs)
		r.cache.Put(r.key(users[i], k, epoch), stored)
		out[i] = recs
	}
	return out, nil
}

// CacheStats returns the underlying cache counters.
func (r *CachedRecommender) CacheStats() cache.Stats { return r.cache.Stats() }
