package core

import (
	"fmt"
	"math"

	"longtailrec/internal/graph"
	"longtailrec/internal/markov"
)

// WalkOptions configure the random-walk recommenders (Algorithm 1).
type WalkOptions struct {
	// MaxSubgraphItems is µ: the BFS expansion stops once the local
	// subgraph holds more than this many item nodes. <= 0 means 6000, the
	// paper's default. Set very large to effectively use the whole graph.
	MaxSubgraphItems int
	// Iterations is τ, the truncated dynamic-programming sweep count.
	// <= 0 means 15, the paper's default. Ignored when Exact is set.
	Iterations int
	// Exact solves the absorbing linear system instead of truncating.
	Exact bool
}

func (o WalkOptions) withDefaults() WalkOptions {
	if o.MaxSubgraphItems <= 0 {
		o.MaxSubgraphItems = 6000
	}
	if o.Iterations <= 0 {
		o.Iterations = 15
	}
	return o
}

// HittingTime is the user-based recommender of §3.3: items are ranked by
// the smallest expected number of steps H(q|j) a walker starting at item j
// needs to hit the query user q. Popular items have large stationary mass
// and therefore large hitting times, so the ranking naturally surfaces the
// long tail.
type HittingTime struct {
	g    *graph.Bipartite
	opts WalkOptions
}

// NewHittingTime builds the recommender over a user–item graph.
func NewHittingTime(g *graph.Bipartite, opts WalkOptions) *HittingTime {
	return &HittingTime{g: g, opts: opts.withDefaults()}
}

// Name implements Recommender.
func (h *HittingTime) Name() string { return "HT" }

// ScoreItems returns -H(q|j) per item (so closer items score higher).
func (h *HittingTime) ScoreItems(u int) ([]float64, error) {
	if err := validateUser(u, h.g.NumUsers()); err != nil {
		return nil, err
	}
	seeds := []int{h.g.UserNode(u)}
	absorb := seeds
	return walkScores(h.g, seeds, absorb, nil, h.opts)
}

// Recommend implements Recommender.
func (h *HittingTime) Recommend(u, k int) ([]Scored, error) {
	return recommendByScores(h, h.g, u, k)
}

// AbsorbingTime is the item-based recommender of §4.1 (Algorithm 1): the
// user's whole rated set S_q becomes absorbing, and candidate items are
// ranked by the expected steps AT(S_q|i) until absorption.
type AbsorbingTime struct {
	g    *graph.Bipartite
	opts WalkOptions
}

// NewAbsorbingTime builds the recommender.
func NewAbsorbingTime(g *graph.Bipartite, opts WalkOptions) *AbsorbingTime {
	return &AbsorbingTime{g: g, opts: opts.withDefaults()}
}

// Name implements Recommender.
func (a *AbsorbingTime) Name() string { return "AT" }

// ScoreItems returns -AT(S_q|i) per item.
func (a *AbsorbingTime) ScoreItems(u int) ([]float64, error) {
	if err := validateUser(u, a.g.NumUsers()); err != nil {
		return nil, err
	}
	absorb, err := userItemNodes(a.g, u)
	if err != nil {
		return nil, err
	}
	return walkScores(a.g, absorb, absorb, nil, a.opts)
}

// Recommend implements Recommender.
func (a *AbsorbingTime) Recommend(u, k int) ([]Scored, error) {
	return recommendByScores(a, a.g, u, k)
}

// AbsorbingCost is the entropy-biased recommender of §4.2 (Eq. 9): the
// same absorbing walk as AbsorbingTime, but stepping from an item into a
// user costs that user's entropy while stepping from a user into an item
// costs the constant C. Construct it with item-based entropies for AC1 or
// topic-based entropies for AC2.
type AbsorbingCost struct {
	g           *graph.Bipartite
	name        string
	userEntropy []float64 // per user, already floored to be positive
	userCost    float64   // C
	opts        WalkOptions
}

// CostOptions extend WalkOptions with the entropy-cost model parameters.
type CostOptions struct {
	WalkOptions
	// UserCost is C, the cost of a user→item transition (Eq. 9);
	// <= 0 means 1.0.
	UserCost float64
	// EntropyFloor raises every user entropy to at least this value so
	// single-item users do not become free corridors; <= 0 means 0.05.
	EntropyFloor float64
}

func (o CostOptions) withDefaults() CostOptions {
	o.WalkOptions = o.WalkOptions.withDefaults()
	if o.UserCost <= 0 {
		o.UserCost = 1.0
	}
	if o.EntropyFloor <= 0 {
		o.EntropyFloor = 0.05
	}
	return o
}

// NewAbsorbingCost builds an entropy-cost recommender. name should be
// "AC1" (item-based entropies) or "AC2" (topic-based), but any label is
// accepted. userEntropy must have one entry per user.
func NewAbsorbingCost(g *graph.Bipartite, name string, userEntropy []float64, opts CostOptions) (*AbsorbingCost, error) {
	if len(userEntropy) != g.NumUsers() {
		return nil, fmt.Errorf("core: %d entropies for %d users", len(userEntropy), g.NumUsers())
	}
	opts = opts.withDefaults()
	floored := make([]float64, len(userEntropy))
	for i, e := range userEntropy {
		if e < 0 || math.IsNaN(e) {
			return nil, fmt.Errorf("core: user %d entropy %v invalid", i, e)
		}
		if e < opts.EntropyFloor {
			floored[i] = opts.EntropyFloor
		} else {
			floored[i] = e
		}
	}
	return &AbsorbingCost{
		g: g, name: name, userEntropy: floored,
		userCost: opts.UserCost, opts: opts.WalkOptions,
	}, nil
}

// Name implements Recommender.
func (a *AbsorbingCost) Name() string { return a.name }

// ScoreItems returns -AC(S_q|i) per item.
func (a *AbsorbingCost) ScoreItems(u int) ([]float64, error) {
	if err := validateUser(u, a.g.NumUsers()); err != nil {
		return nil, err
	}
	absorb, err := userItemNodes(a.g, u)
	if err != nil {
		return nil, err
	}
	// Entering user node v costs E(v); entering an item costs C (Eq. 9).
	enter := func(orig int) float64 {
		if a.g.IsUserNode(orig) {
			return a.userEntropy[orig]
		}
		return a.userCost
	}
	return walkScores(a.g, absorb, absorb, enter, a.opts)
}

// Recommend implements Recommender.
func (a *AbsorbingCost) Recommend(u, k int) ([]Scored, error) {
	return recommendByScores(a, a.g, u, k)
}

// SymmetricAbsorbingCost extends the Eq. 9 cost model in the direction
// §4.2.1 leaves open: instead of a constant C for user→item transitions,
// entering item i costs that item's entropy over its raters. Blockbusters
// (high item entropy) become expensive hubs, niche items cheap corridors —
// pushing the walk's cost structure further toward the tail. This is an
// extension beyond the paper's evaluated variants, benchmarked in the
// ablation suite.
type SymmetricAbsorbingCost struct {
	g           *graph.Bipartite
	name        string
	userEntropy []float64
	itemEntropy []float64
	opts        WalkOptions
}

// NewSymmetricAbsorbingCost builds the symmetric-cost recommender.
// Both entropy vectors are floored at opts.EntropyFloor.
func NewSymmetricAbsorbingCost(g *graph.Bipartite, name string, userEntropy, itemEntropy []float64, opts CostOptions) (*SymmetricAbsorbingCost, error) {
	if len(userEntropy) != g.NumUsers() {
		return nil, fmt.Errorf("core: %d user entropies for %d users", len(userEntropy), g.NumUsers())
	}
	if len(itemEntropy) != g.NumItems() {
		return nil, fmt.Errorf("core: %d item entropies for %d items", len(itemEntropy), g.NumItems())
	}
	opts = opts.withDefaults()
	floor := func(src []float64) ([]float64, error) {
		out := make([]float64, len(src))
		for i, e := range src {
			if e < 0 || math.IsNaN(e) {
				return nil, fmt.Errorf("core: entropy %v at %d invalid", e, i)
			}
			if e < opts.EntropyFloor {
				out[i] = opts.EntropyFloor
			} else {
				out[i] = e
			}
		}
		return out, nil
	}
	ue, err := floor(userEntropy)
	if err != nil {
		return nil, err
	}
	ie, err := floor(itemEntropy)
	if err != nil {
		return nil, err
	}
	return &SymmetricAbsorbingCost{g: g, name: name, userEntropy: ue, itemEntropy: ie, opts: opts.WalkOptions}, nil
}

// Name implements Recommender.
func (a *SymmetricAbsorbingCost) Name() string { return a.name }

// ScoreItems returns the negated symmetric absorbing cost per item.
func (a *SymmetricAbsorbingCost) ScoreItems(u int) ([]float64, error) {
	if err := validateUser(u, a.g.NumUsers()); err != nil {
		return nil, err
	}
	absorb, err := userItemNodes(a.g, u)
	if err != nil {
		return nil, err
	}
	enter := func(orig int) float64 {
		if a.g.IsUserNode(orig) {
			return a.userEntropy[orig]
		}
		return a.itemEntropy[a.g.ItemIndex(orig)]
	}
	return walkScores(a.g, absorb, absorb, enter, a.opts)
}

// Recommend implements Recommender.
func (a *SymmetricAbsorbingCost) Recommend(u, k int) ([]Scored, error) {
	return recommendByScores(a, a.g, u, k)
}

// userItemNodes maps S_q to graph node ids, failing on cold users.
func userItemNodes(g *graph.Bipartite, u int) ([]int, error) {
	items, _ := g.UserItems(u)
	if len(items) == 0 {
		return nil, fmt.Errorf("%w: user %d", ErrColdUser, u)
	}
	nodes := make([]int, len(items))
	for k, i := range items {
		nodes[k] = g.ItemNode(i)
	}
	return nodes, nil
}

// walkScores runs Algorithm 1: extract a BFS subgraph around the seeds,
// build the local chain, compute (truncated) absorbing times — or costs
// when enterCost is non-nil — with the given absorbing nodes, and spread
// the negated values back onto the full item universe (-Inf elsewhere).
func walkScores(g *graph.Bipartite, seeds, absorbing []int, enterCost func(origNode int) float64, opts WalkOptions) ([]float64, error) {
	sg, err := graph.ExtractSubgraph(g, seeds, opts.MaxSubgraphItems)
	if err != nil {
		return nil, fmt.Errorf("core: subgraph: %w", err)
	}
	chain, err := markov.NewChain(sg.Adjacency())
	if err != nil {
		return nil, fmt.Errorf("core: chain: %w", err)
	}
	absorbLocal := make([]int, 0, len(absorbing))
	for _, orig := range absorbing {
		l, ok := sg.LocalNode(orig)
		if !ok {
			// Seeds are always retained, so this is an internal bug.
			return nil, fmt.Errorf("core: absorbing node %d missing from subgraph", orig)
		}
		absorbLocal = append(absorbLocal, l)
	}
	var times []float64
	if enterCost == nil {
		if opts.Exact {
			times, err = chain.AbsorbingTimeExact(absorbLocal)
		} else {
			times, err = chain.AbsorbingTimeTruncated(absorbLocal, opts.Iterations)
		}
	} else {
		enter := make([]float64, sg.Len())
		for l := 0; l < sg.Len(); l++ {
			enter[l] = enterCost(sg.OriginalNode(l))
		}
		step := chain.StepCosts(enter)
		if opts.Exact {
			times, err = chain.AbsorbingCostExact(absorbLocal, step)
		} else {
			times, err = chain.AbsorbingCostTruncated(absorbLocal, step, opts.Iterations)
		}
	}
	if err != nil {
		return nil, fmt.Errorf("core: absorbing solve: %w", err)
	}
	scores := make([]float64, g.NumItems())
	for i := range scores {
		scores[i] = math.Inf(-1)
	}
	for l, t := range times {
		orig := sg.OriginalNode(l)
		if !g.IsItemNode(orig) {
			continue
		}
		if math.IsInf(t, 1) {
			continue // unreachable even inside the subgraph
		}
		scores[g.ItemIndex(orig)] = -t
	}
	return scores, nil
}

// recommendByScores implements Recommend on top of ScoreItems for the walk
// recommenders, excluding the user's rated items.
func recommendByScores(r Recommender, g *graph.Bipartite, u, k int) ([]Scored, error) {
	scores, err := r.ScoreItems(u)
	if err != nil {
		return nil, err
	}
	items, _ := g.UserItems(u)
	exclude := make(map[int]struct{}, len(items))
	for _, i := range items {
		exclude[i] = struct{}{}
	}
	return TopK(scores, k, exclude), nil
}
