package core

import (
	"fmt"
	"math"

	"longtailrec/internal/graph"
)

// WalkOptions configure the random-walk recommenders (Algorithm 1).
type WalkOptions struct {
	// MaxSubgraphItems is µ: the BFS expansion stops once the local
	// subgraph holds more than this many item nodes. <= 0 means 6000, the
	// paper's default. Set very large to effectively use the whole graph.
	MaxSubgraphItems int
	// Iterations is τ, the truncated dynamic-programming sweep count.
	// <= 0 means 15, the paper's default. Ignored when Exact is set.
	Iterations int
	// Exact solves the absorbing linear system instead of truncating.
	Exact bool
}

func (o WalkOptions) withDefaults() WalkOptions {
	if o.MaxSubgraphItems <= 0 {
		o.MaxSubgraphItems = 6000
	}
	if o.Iterations <= 0 {
		o.Iterations = 15
	}
	return o
}

// walkRecommender is the shared engine-backed implementation behind the
// four walk recommenders: each one is a walkSpec bound to a pooled
// Engine under an algorithm name. It implements RecommenderV2 and
// BatchRecommenderV2 natively.
type walkRecommender struct {
	g    *graph.Bipartite
	eng  *Engine
	spec walkSpec
	algo string
}

func newWalkRecommender(g *graph.Bipartite, opts WalkOptions, spec walkSpec, algo string) walkRecommender {
	return walkRecommender{g: g, eng: NewEngine(g, opts), spec: spec, algo: algo}
}

// Name implements Recommender.
func (w *walkRecommender) Name() string { return w.algo }

// ScoreItems returns the negated walk time/cost per item over the full item
// universe (-Inf outside the BFS subgraph). The caller owns the slice.
func (w *walkRecommender) ScoreItems(u int) ([]float64, error) {
	return w.eng.scoreItemsFull(u, w.spec)
}

// ScoreItemsCompact returns scores only for the subgraph-resident items —
// the allocation-light view the engine computes natively. The caller owns
// the slice.
func (w *walkRecommender) ScoreItemsCompact(u int) ([]ItemScore, error) {
	return w.eng.scoreItemsCompact(u, w.spec)
}

// RecommendRequest serves one context-aware Request through the pooled
// engine — the native RecommenderV2 path: the request's context is
// checked at the extraction boundaries and between τ sweeps, and the
// candidate/exclude/long-tail options are applied inside the engine's
// stamped selection loop.
func (w *walkRecommender) RecommendRequest(req Request) (Response, error) {
	return w.eng.recommendRequestPooled(req, w.spec, w.algo, nil)
}

// RecommendRequestFP is RecommendRequest also reporting the query's
// dependency fingerprint (write-generation watermark + bloom of the
// subgraph's node ids) — what a caching layer stores to revalidate the
// result precisely instead of by whole-graph epoch. Implements the
// fingerprint production path CachedRecommender type-asserts for.
func (w *walkRecommender) RecommendRequestFP(req Request) (Response, graph.Fingerprint, error) {
	var fp graph.Fingerprint
	resp, err := w.eng.recommendRequestPooled(req, w.spec, w.algo, &fp)
	return resp, fp, err
}

// RecommendRequestBatch serves many Requests concurrently across
// parallelism workers (<= 0 means GOMAXPROCS), honoring each request's
// own context. Cold users yield a zero Response. Implements
// BatchRecommenderV2.
func (w *walkRecommender) RecommendRequestBatch(reqs []Request, parallelism int) ([]Response, error) {
	return w.eng.recommendRequestBatch(reqs, parallelism, w.spec, w.algo, nil)
}

// RecommendRequestBatchFP is RecommendRequestBatch also reporting each
// request's dependency fingerprint (aligned with the responses; cold
// users get an invalid zero fingerprint).
func (w *walkRecommender) RecommendRequestBatchFP(reqs []Request, parallelism int) ([]Response, []graph.Fingerprint, error) {
	fps := make([]graph.Fingerprint, len(reqs))
	resps, err := w.eng.recommendRequestBatch(reqs, parallelism, w.spec, w.algo, fps)
	return resps, fps, err
}

// Recommend returns the top-k unrated items for u — the legacy surface,
// a thin wrapper over the Request path.
func (w *walkRecommender) Recommend(u, k int) ([]Scored, error) {
	return w.eng.recommend(u, k, w.spec)
}

// RecommendBatch scores many users concurrently across parallelism workers
// (<= 0 means GOMAXPROCS). Cold users yield a nil entry. Implements
// BatchRecommender; a thin wrapper over RecommendRequestBatch.
func (w *walkRecommender) RecommendBatch(users []int, k, parallelism int) ([][]Scored, error) {
	resps, err := w.eng.recommendRequestBatch(PlainRequests(users, k), parallelism, w.spec, w.algo, nil)
	if err != nil {
		return nil, err
	}
	return ResponseItems(resps), nil
}

// HittingTime is the user-based recommender of §3.3: items are ranked by
// the smallest expected number of steps H(q|j) a walker starting at item j
// needs to hit the query user q. Popular items have large stationary mass
// and therefore large hitting times, so the ranking naturally surfaces the
// long tail.
type HittingTime struct {
	walkRecommender
}

// NewHittingTime builds the recommender over a user–item graph.
func NewHittingTime(g *graph.Bipartite, opts WalkOptions) *HittingTime {
	return &HittingTime{newWalkRecommender(g, opts, walkSpec{seedUser: true}, "HT")}
}

// AbsorbingTime is the item-based recommender of §4.1 (Algorithm 1): the
// user's whole rated set S_q becomes absorbing, and candidate items are
// ranked by the expected steps AT(S_q|i) until absorption.
type AbsorbingTime struct {
	walkRecommender
}

// NewAbsorbingTime builds the recommender.
func NewAbsorbingTime(g *graph.Bipartite, opts WalkOptions) *AbsorbingTime {
	return &AbsorbingTime{newWalkRecommender(g, opts, walkSpec{}, "AT")}
}

// AbsorbingCost is the entropy-biased recommender of §4.2 (Eq. 9): the
// same absorbing walk as AbsorbingTime, but stepping from an item into a
// user costs that user's entropy while stepping from a user into an item
// costs the constant C. Construct it with item-based entropies for AC1 or
// topic-based entropies for AC2.
type AbsorbingCost struct {
	walkRecommender
}

// CostOptions extend WalkOptions with the entropy-cost model parameters.
type CostOptions struct {
	WalkOptions
	// UserCost is C, the cost of a user→item transition (Eq. 9);
	// <= 0 means 1.0.
	UserCost float64
	// EntropyFloor raises every user entropy to at least this value so
	// single-item users do not become free corridors; <= 0 means 0.05.
	EntropyFloor float64
}

func (o CostOptions) withDefaults() CostOptions {
	o.WalkOptions = o.WalkOptions.withDefaults()
	if o.UserCost <= 0 {
		o.UserCost = 1.0
	}
	if o.EntropyFloor <= 0 {
		o.EntropyFloor = 0.05
	}
	return o
}

// flooredEntropies validates an entropy vector and raises it to the floor.
func flooredEntropies(src []float64, floor float64) ([]float64, error) {
	out := make([]float64, len(src))
	for i, e := range src {
		if e < 0 || math.IsNaN(e) {
			return nil, fmt.Errorf("core: entropy %v at %d invalid", e, i)
		}
		if e < floor {
			out[i] = floor
		} else {
			out[i] = e
		}
	}
	return out, nil
}

// NewAbsorbingCost builds an entropy-cost recommender. name should be
// "AC1" (item-based entropies) or "AC2" (topic-based), but any label is
// accepted. userEntropy must cover at least the graph's built user
// universe (and at most its current one); users admitted live after the
// vector was computed are charged the entropy floor (no history yet).
func NewAbsorbingCost(g *graph.Bipartite, name string, userEntropy []float64, opts CostOptions) (*AbsorbingCost, error) {
	if len(userEntropy) < g.BaseNumUsers() || len(userEntropy) > g.NumUsers() {
		return nil, fmt.Errorf("core: %d entropies for %d users", len(userEntropy), g.NumUsers())
	}
	opts = opts.withDefaults()
	floored, err := flooredEntropies(userEntropy, opts.EntropyFloor)
	if err != nil {
		return nil, err
	}
	return &AbsorbingCost{
		walkRecommender: newWalkRecommender(g, opts.WalkOptions, walkSpec{
			costed:     true,
			userEnter:  floored,
			userCost:   opts.UserCost,
			enterFloor: opts.EntropyFloor,
		}, name),
	}, nil
}

// SymmetricAbsorbingCost extends the Eq. 9 cost model in the direction
// §4.2.1 leaves open: instead of a constant C for user→item transitions,
// entering item i costs that item's entropy over its raters. Blockbusters
// (high item entropy) become expensive hubs, niche items cheap corridors —
// pushing the walk's cost structure further toward the tail. This is an
// extension beyond the paper's evaluated variants, benchmarked in the
// ablation suite.
type SymmetricAbsorbingCost struct {
	walkRecommender
}

// NewSymmetricAbsorbingCost builds the symmetric-cost recommender.
// Both entropy vectors must cover at least the graph's built universe and
// are floored at opts.EntropyFloor; users and items admitted live past
// their ends are charged the floor.
func NewSymmetricAbsorbingCost(g *graph.Bipartite, name string, userEntropy, itemEntropy []float64, opts CostOptions) (*SymmetricAbsorbingCost, error) {
	if len(userEntropy) < g.BaseNumUsers() || len(userEntropy) > g.NumUsers() {
		return nil, fmt.Errorf("core: %d user entropies for %d users", len(userEntropy), g.NumUsers())
	}
	if len(itemEntropy) < g.BaseNumItems() || len(itemEntropy) > g.NumItems() {
		return nil, fmt.Errorf("core: %d item entropies for %d items", len(itemEntropy), g.NumItems())
	}
	opts = opts.withDefaults()
	ue, err := flooredEntropies(userEntropy, opts.EntropyFloor)
	if err != nil {
		return nil, err
	}
	ie, err := flooredEntropies(itemEntropy, opts.EntropyFloor)
	if err != nil {
		return nil, err
	}
	return &SymmetricAbsorbingCost{
		walkRecommender: newWalkRecommender(g, opts.WalkOptions, walkSpec{
			costed:     true,
			userEnter:  ue,
			itemEnter:  ie,
			enterFloor: opts.EntropyFloor,
		}, name),
	}, nil
}

// userItemNodes maps S_q to graph node ids, failing on cold users.
func userItemNodes(g *graph.Bipartite, u int) ([]int, error) {
	items, _ := g.UserItems(u)
	if len(items) == 0 {
		return nil, fmt.Errorf("%w: user %d", ErrColdUser, u)
	}
	nodes := make([]int, len(items))
	for k, i := range items {
		nodes[k] = g.ItemNode(i)
	}
	return nodes, nil
}
