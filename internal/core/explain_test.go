package core

import (
	"math"
	"testing"
)

func TestExplainAbsorptionFigure2(t *testing.T) {
	// Explaining M4 for U5 (rated M2, M3): M4 connects only through U4,
	// whose other item is M3 — so M3 must dominate the absorption mass.
	g := figure2Graph(t)
	anchors, err := ExplainAbsorption(g, 4, 3, WalkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(anchors) == 0 {
		t.Fatal("no anchors")
	}
	total := 0.0
	for _, a := range anchors {
		if a.Item != 1 && a.Item != 2 {
			t.Fatalf("anchor %d is not a rated item of U5", a.Item)
		}
		if a.Probability < 0 || a.Probability > 1 {
			t.Fatalf("anchor probability %v", a.Probability)
		}
		total += a.Probability
	}
	if math.Abs(total-1) > 1e-6 {
		t.Fatalf("absorption shares sum to %v", total)
	}
	if anchors[0].Item != 2 {
		t.Fatalf("top anchor %d, want 2 (M3, the U4 connection)", anchors[0].Item)
	}
	if anchors[0].Probability < 0.5 {
		t.Fatalf("M3 share %v should dominate", anchors[0].Probability)
	}
}

func TestExplainAbsorptionSortedDescending(t *testing.T) {
	g := figure2Graph(t)
	anchors, err := ExplainAbsorption(g, 4, 0, WalkOptions{}) // explain M1
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k < len(anchors); k++ {
		if anchors[k].Probability > anchors[k-1].Probability {
			t.Fatal("anchors not sorted")
		}
	}
}

func TestExplainAbsorptionValidation(t *testing.T) {
	g := figure2Graph(t)
	if _, err := ExplainAbsorption(g, -1, 0, WalkOptions{}); err == nil {
		t.Fatal("bad user accepted")
	}
	if _, err := ExplainAbsorption(g, 4, 99, WalkOptions{}); err == nil {
		t.Fatal("bad candidate accepted")
	}
	// Candidate already rated by the user.
	if _, err := ExplainAbsorption(g, 4, 1, WalkOptions{}); err == nil {
		t.Fatal("rated candidate accepted")
	}
}
