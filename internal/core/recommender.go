// Package core implements the paper's contribution: the suite of
// graph-based long-tail recommenders — Hitting Time (§3.3), Absorbing Time
// (§4.1, Algorithm 1) and the two entropy-biased Absorbing Cost variants
// (§4.2) — behind a single Recommender interface, plus adapters that wrap
// the score-based baselines (LDA, PureSVD, DPPR, kNN, popularity) so the
// evaluation harness can treat every algorithm uniformly.
//
// All recommenders expose higher-is-better item scores; the random-walk
// algorithms internally rank by smallest time/cost and negate, so a small
// hitting time becomes a large score. Items an algorithm cannot score for
// a user (e.g. outside the BFS subgraph of Algorithm 1) get -Inf.
package core

import (
	"errors"
	"fmt"
	"math"

	"longtailrec/internal/topk"
)

// ErrColdUser is returned when a query user has no rated items to anchor
// the walk (S_q = ∅).
var ErrColdUser = errors.New("core: user has no rated items")

// ErrUserOutOfRange marks a query for a user index outside the live
// universe — a sentinel so the HTTP layer's 404 mapping does not hinge
// on the message wording.
var ErrUserOutOfRange = errors.New("user out of range")

// Scored pairs an item with its ranking score (higher is better).
type Scored struct {
	Item  int
	Score float64
}

// Recommender is the uniform interface over all algorithms in the paper's
// evaluation.
type Recommender interface {
	// Name identifies the algorithm (e.g. "HT", "AC2", "PureSVD").
	Name() string
	// ScoreItems returns a per-item score vector for user u, higher
	// meaning more recommendable. Unscorable items are -Inf. The caller
	// owns the returned slice.
	ScoreItems(u int) ([]float64, error)
	// Recommend returns the top-k items for u by score, excluding the
	// items u has already rated. Fewer than k items may be returned when
	// the algorithm cannot score enough candidates.
	Recommend(u, k int) ([]Scored, error)
}

// BatchRecommender is implemented by recommenders that can score many
// users concurrently (the walk recommenders, via the pooled Engine).
type BatchRecommender interface {
	Recommender
	// RecommendBatch returns one recommendation list per user, computed
	// across up to parallelism workers (<= 0 means GOMAXPROCS). Cold users
	// yield a nil entry rather than failing the batch.
	RecommendBatch(users []int, k, parallelism int) ([][]Scored, error)
}

// BatchRecommend serves a multi-user workload through r — the legacy
// batch surface, a thin wrapper over BatchRecommendRequests (which
// dispatches to r's concurrent batch path when it has one and loops
// sequentially otherwise). Cold users yield nil entries. Prefer a
// BatchRecommender implementation if r has one: the Request path only
// falls back to it for option-free requests.
func BatchRecommend(r Recommender, users []int, k, parallelism int) ([][]Scored, error) {
	if _, ok := r.(RecommenderV2); !ok {
		if br, ok := r.(BatchRecommender); ok {
			return br.RecommendBatch(users, k, parallelism)
		}
	}
	resps, err := BatchRecommendRequests(r, PlainRequests(users, k), parallelism)
	if err != nil {
		return nil, err
	}
	return ResponseItems(resps), nil
}

// TopK selects the k highest-scoring items from scores, skipping excluded
// items and -Inf/NaN entries. Ties break toward the smaller item index so
// results are deterministic. Selection runs in O(n log k) via a bounded
// min-heap.
func TopK(scores []float64, k int, exclude map[int]struct{}) []Scored {
	if k <= 0 {
		return nil
	}
	sel := topk.NewSelector(k)
	for i, s := range scores {
		if math.IsInf(s, -1) || math.IsNaN(s) {
			continue
		}
		if _, skip := exclude[i]; skip {
			continue
		}
		sel.Offer(i, s)
	}
	items := sel.Take()
	out := make([]Scored, len(items))
	for i, it := range items {
		out[i] = Scored{Item: it.ID, Score: it.Score}
	}
	return out
}

// RankOf returns the 1-based rank of target within the candidate set under
// the given scores (higher scores rank first; ties resolved against the
// target pessimistically, matching the conservative reading of the
// Recall@N protocol). Returns 0 if the target is not in candidates.
func RankOf(scores []float64, target int, candidates []int) int {
	found := false
	for _, c := range candidates {
		if c == target {
			found = true
			break
		}
	}
	if !found {
		return 0
	}
	ts := scores[target]
	rank := 1
	for _, c := range candidates {
		if c == target {
			continue
		}
		cs := scores[c]
		if cs > ts || (cs == ts && c < target) {
			rank++
		}
	}
	return rank
}

// validateUser bounds-checks a user index against a universe size.
func validateUser(u, numUsers int) error {
	if u < 0 || u >= numUsers {
		return fmt.Errorf("core: %w: user %d not in [0,%d)", ErrUserOutOfRange, u, numUsers)
	}
	return nil
}
