package core

import (
	"errors"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"longtailrec/internal/graph"
)

// engineTestGraph builds a random bipartite graph with user 0 cold.
func engineTestGraph(t testing.TB, numUsers, numItems int, seed int64) *graph.Bipartite {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(numUsers, numItems)
	for u := 1; u < numUsers; u++ {
		k := 3 + rng.Intn(8)
		for ; k > 0; k-- {
			_ = b.AddRating(u, rng.Intn(numItems), float64(1+rng.Intn(5)))
		}
	}
	return b.Build()
}

// walkRecommenders builds one of each engine-backed recommender over g.
func walkRecommenders(t testing.TB, g *graph.Bipartite, opts WalkOptions) []BatchRecommender {
	t.Helper()
	ue := make([]float64, g.NumUsers())
	ie := make([]float64, g.NumItems())
	rng := rand.New(rand.NewSource(7))
	for i := range ue {
		ue[i] = rng.Float64() * 2
	}
	for i := range ie {
		ie[i] = rng.Float64() * 2
	}
	ac, err := NewAbsorbingCost(g, "AC1", ue, CostOptions{WalkOptions: opts})
	if err != nil {
		t.Fatal(err)
	}
	ac3, err := NewSymmetricAbsorbingCost(g, "AC3", ue, ie, CostOptions{WalkOptions: opts})
	if err != nil {
		t.Fatal(err)
	}
	return []BatchRecommender{
		NewHittingTime(g, opts),
		NewAbsorbingTime(g, opts),
		ac, ac3,
	}
}

// TestCompactScoresMatchFull checks the compact (item, score) view against
// the full score vector: same items scored, same values, nothing else.
func TestCompactScoresMatchFull(t *testing.T) {
	g := engineTestGraph(t, 30, 80, 1)
	ht := NewHittingTime(g, WalkOptions{MaxSubgraphItems: 25, Iterations: 10})
	at := NewAbsorbingTime(g, WalkOptions{MaxSubgraphItems: 25, Iterations: 10})
	for u := 1; u < 10; u++ {
		for _, rec := range []interface {
			ScoreItems(int) ([]float64, error)
			ScoreItemsCompact(int) ([]ItemScore, error)
		}{ht, at} {
			full, err := rec.ScoreItems(u)
			if err != nil {
				t.Fatal(err)
			}
			compact, err := rec.ScoreItemsCompact(u)
			if err != nil {
				t.Fatal(err)
			}
			seen := make(map[int]float64, len(compact))
			for _, is := range compact {
				seen[is.Item] = is.Score
			}
			if len(seen) != len(compact) {
				t.Fatal("duplicate items in compact result")
			}
			for i, s := range full {
				cs, ok := seen[i]
				if math.IsInf(s, -1) {
					if ok {
						t.Fatalf("user %d item %d: compact scored an out-of-subgraph item", u, i)
					}
					continue
				}
				if !ok || cs != s {
					t.Fatalf("user %d item %d: compact %v (present %v), full %v", u, i, cs, ok, s)
				}
			}
		}
	}
}

// TestRecommendBatchMatchesSequential checks that batch results are
// identical to one-at-a-time Recommend calls for every walk recommender.
func TestRecommendBatchMatchesSequential(t *testing.T) {
	g := engineTestGraph(t, 40, 100, 2)
	users := make([]int, 0, 39)
	for u := 1; u < 40; u++ {
		users = append(users, u)
	}
	for _, rec := range walkRecommenders(t, g, WalkOptions{MaxSubgraphItems: 30, Iterations: 8}) {
		batch, err := rec.RecommendBatch(users, 5, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) != len(users) {
			t.Fatalf("batch returned %d lists for %d users", len(batch), len(users))
		}
		for i, u := range users {
			want, err := rec.Recommend(u, 5)
			if err != nil {
				t.Fatal(err)
			}
			got := batch[i]
			if len(got) != len(want) {
				t.Fatalf("%T user %d: batch %d items, sequential %d", rec, u, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("%T user %d slot %d: batch %+v, sequential %+v", rec, u, j, got[j], want[j])
				}
			}
		}
	}
}

// TestRecommendBatchColdUser checks cold users yield nil entries without
// failing the batch, while out-of-range users abort it.
func TestRecommendBatchColdUser(t *testing.T) {
	g := engineTestGraph(t, 20, 50, 3)
	at := NewAbsorbingTime(g, WalkOptions{Iterations: 5})
	batch, err := at.RecommendBatch([]int{5, 0, 6}, 3, 2) // user 0 is cold
	if err != nil {
		t.Fatal(err)
	}
	if batch[0] == nil || batch[2] == nil {
		t.Fatal("warm users got nil lists")
	}
	if batch[1] != nil {
		t.Fatalf("cold user got %v", batch[1])
	}
	if _, err := at.RecommendBatch([]int{5, 99}, 3, 2); err == nil {
		t.Fatal("out-of-range user accepted")
	}
}

// TestEngineConcurrentUse hammers one shared engine from many goroutines
// mixing Recommend and RecommendBatch; run under -race this locks in the
// pool's thread-safety.
func TestEngineConcurrentUse(t *testing.T) {
	g := engineTestGraph(t, 30, 60, 4)
	recs := walkRecommenders(t, g, WalkOptions{MaxSubgraphItems: 20, Iterations: 6})
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for q := 0; q < 10; q++ {
				rec := recs[(w+q)%len(recs)]
				u := 1 + (w*7+q)%29
				if q%3 == 0 {
					if _, err := rec.RecommendBatch([]int{u, 1 + u%29, 1 + (u+3)%29}, 4, 2); err != nil {
						errc <- err
						return
					}
					continue
				}
				if _, err := rec.Recommend(u, 4); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestBatchRecommendFallback routes a plain (non-batch) recommender
// through the generic helper.
func TestBatchRecommendFallback(t *testing.T) {
	g := engineTestGraph(t, 10, 20, 5)
	fr, err := NewFuncRecommender("const", g, func(u int) ([]float64, error) {
		out := make([]float64, g.NumItems())
		for i := range out {
			out[i] = float64(i)
		}
		return out, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := Recommender(fr).(BatchRecommender); ok {
		t.Fatal("FuncRecommender unexpectedly implements BatchRecommender; fallback untested")
	}
	lists, err := BatchRecommend(fr, []int{1, 2}, 3, runtime.GOMAXPROCS(0))
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range lists {
		if len(l) != 3 {
			t.Fatalf("list %d has %d items", i, len(l))
		}
	}
	// The engine-backed path dispatches to the concurrent implementation.
	at := NewAbsorbingTime(g, WalkOptions{Iterations: 4})
	if _, ok := Recommender(at).(BatchRecommender); !ok {
		t.Fatal("AbsorbingTime does not implement BatchRecommender")
	}
}

// TestEngineColdUserError checks the single-query cold-user contract is
// unchanged.
func TestEngineColdUserError(t *testing.T) {
	g := engineTestGraph(t, 10, 20, 6)
	at := NewAbsorbingTime(g, WalkOptions{})
	if _, err := at.Recommend(0, 3); !errors.Is(err, ErrColdUser) {
		t.Fatalf("err = %v, want ErrColdUser", err)
	}
	ht := NewHittingTime(g, WalkOptions{})
	if recs, err := ht.Recommend(0, 3); err != nil || len(recs) != 0 {
		t.Fatalf("HT cold user: recs %v err %v, want empty and nil", recs, err)
	}
}
