// Soundness property tests for fingerprint cache invalidation: across
// randomized write/read interleavings the fingerprint-revalidating cache
// must NEVER serve a response that a fresh compute (equivalently: the old
// epoch-keyed cache, which recomputed after every write) would have
// produced differently. False retention — a cached entry surviving a
// write that actually changed its result — is the bug class these tests
// exist to catch; false invalidation only costs a recompute and is not an
// error. A fuzz target drives the same harness from a byte stream
// (`make fuzz` / the CI fuzz smoke explore it coverage-guided).

package core

import (
	"math/rand"
	"reflect"
	"testing"

	"longtailrec/internal/cache"
	"longtailrec/internal/graph"
)

// twoClusterGraph builds a graph of two fully disconnected rating
// clusters: users 0-2 over items 0-2, users 3-5 over items 3-5. Writes
// confined to one cluster provably cannot change the other cluster's
// walks, so fingerprint revalidation has retention to prove — and a
// cross-cluster write merges the components, which the soundness check
// must survive too.
func twoClusterGraph(t testing.TB) *graph.Bipartite {
	t.Helper()
	g, err := graph.FromRatings(6, 6, []graph.Rating{
		{User: 0, Item: 0, Weight: 5}, {User: 0, Item: 1, Weight: 3},
		{User: 1, Item: 1, Weight: 4}, {User: 1, Item: 2, Weight: 2},
		{User: 2, Item: 0, Weight: 4}, {User: 2, Item: 2, Weight: 5},
		{User: 3, Item: 3, Weight: 5}, {User: 3, Item: 4, Weight: 3},
		{User: 4, Item: 4, Weight: 4}, {User: 4, Item: 5, Weight: 2},
		{User: 5, Item: 3, Weight: 4}, {User: 5, Item: 5, Weight: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// checkSoundness compares one cached response against a fresh uncached
// compute over the same graph — the golden the fingerprint cache must
// never diverge from.
func checkSoundness(t testing.TB, golden *AbsorbingTime, cached *CachedRecommender, req Request, step int) {
	t.Helper()
	got, err := cached.RecommendRequest(req)
	if err != nil {
		t.Fatalf("step %d: cached request %+v: %v", step, req, err)
	}
	want, err := golden.RecommendRequest(req)
	if err != nil {
		t.Fatalf("step %d: golden request %+v: %v", step, req, err)
	}
	if !reflect.DeepEqual(got.Items, want.Items) || got.Algo != want.Algo {
		t.Fatalf("step %d: UNSOUND retention for %+v (cacheHit=%v):\ncached %+v\nfresh  %+v",
			step, req, got.CacheHit, got.Items, want.Items)
	}
}

// TestCachedFingerprintSoundness runs seeded random write/read
// interleavings on the two-cluster graph and checks every read against a
// fresh compute. Most writes stay in their user's cluster (retention to
// prove); a minority cross clusters and merge the components mid-run.
// The run must both stay sound AND actually exercise the fingerprint
// path (validated hits > 0) — a vacuous pass is a test bug.
func TestCachedFingerprintSoundness(t *testing.T) {
	var totalFPHits uint64
	for seed := int64(1); seed <= 6; seed++ {
		g := twoClusterGraph(t)
		at := NewAbsorbingTime(g, WalkOptions{Iterations: 10})
		golden := NewAbsorbingTime(g, WalkOptions{Iterations: 10})
		cached, err := NewCachedRecommender(at, g, cache.New[CacheEntry](128))
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		for step := 0; step < 120; step++ {
			switch rng.Intn(4) {
			case 0: // in-cluster write
				u := rng.Intn(6)
				i := (u/3)*3 + rng.Intn(3)
				if _, err := g.UpsertRating(u, i, 1+float64(rng.Intn(5))); err != nil {
					t.Fatal(err)
				}
			case 1: // occasionally a cross-cluster write (merges components)
				if rng.Intn(4) == 0 {
					u := rng.Intn(6)
					i := ((u/3)^1)*3 + rng.Intn(3)
					if _, err := g.UpsertRating(u, i, 1+float64(rng.Intn(5))); err != nil {
						t.Fatal(err)
					}
				}
			default: // read, checked against a fresh compute
				req := Request{User: rng.Intn(6), K: 1 + rng.Intn(4)}
				checkSoundness(t, golden, cached, req, step)
			}
		}
		totalFPHits += cached.CacheStats().FingerprintHits
	}
	if totalFPHits == 0 {
		t.Fatal("no fingerprint-validated hits across all seeds: the precision path never ran")
	}
}

// TestCachedFingerprintSoundnessDense is the same property on the
// Figure 2 graph — one connected component, where every subgraph covers
// the whole graph and the fingerprint path must degrade to recomputing
// after every write without ever serving a stale byte.
func TestCachedFingerprintSoundnessDense(t *testing.T) {
	g := figure2Graph(t)
	at := NewAbsorbingTime(g, WalkOptions{Iterations: 10})
	golden := NewAbsorbingTime(g, WalkOptions{Iterations: 10})
	cached, err := NewCachedRecommender(at, g, cache.New[CacheEntry](128))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for step := 0; step < 150; step++ {
		if rng.Intn(3) == 0 {
			u, i := rng.Intn(g.NumUsers()), rng.Intn(g.NumItems())
			if _, err := g.UpsertRating(u, i, 1+float64(rng.Intn(5))); err != nil {
				t.Fatal(err)
			}
		} else {
			req := Request{User: rng.Intn(g.NumUsers()), K: 1 + rng.Intn(4)}
			checkSoundness(t, golden, cached, req, step)
		}
	}
}

// FuzzFingerprintSoundness drives the soundness harness from a fuzz byte
// stream: each op byte pair picks a write (in- or cross-cluster, any
// score) or a checked read. Any input that makes the cached path serve a
// response a fresh compute would not have produced is a crashing find.
func FuzzFingerprintSoundness(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07})
	f.Add([]byte{0x2a, 0x11, 0x93, 0x5c, 0x77, 0x08, 0xe1, 0x3f, 0x42, 0x9d})
	f.Add([]byte{0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88, 0x77, 0x66, 0x55, 0x44})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 || len(data) > 256 {
			return
		}
		g := twoClusterGraph(t)
		at := NewAbsorbingTime(g, WalkOptions{Iterations: 8})
		golden := NewAbsorbingTime(g, WalkOptions{Iterations: 8})
		cached, err := NewCachedRecommender(at, g, cache.New[CacheEntry](64))
		if err != nil {
			t.Fatal(err)
		}
		for p := 0; p+1 < len(data); p += 2 {
			op, arg := data[p], int(data[p+1])
			u := arg % 6
			switch op % 3 {
			case 0: // in-cluster write
				i := (u/3)*3 + (arg/6)%3
				if _, err := g.UpsertRating(u, i, 1+float64(op%5)); err != nil {
					t.Fatal(err)
				}
			case 1: // unrestricted write (may merge the clusters)
				if _, err := g.UpsertRating(u, (arg/6)%6, 1+float64(op%5)); err != nil {
					t.Fatal(err)
				}
			default: // checked read
				checkSoundness(t, golden, cached, Request{User: u, K: 1 + (arg/6)%4}, p)
			}
		}
	})
}
