package core

import (
	"fmt"
	"sort"
	"sync"

	"longtailrec/internal/graph"
	"longtailrec/internal/markov"
)

// explainExtractors pools SubgraphExtractor values for ExplainAbsorption so
// repeated explain calls do not re-allocate the extractor's two
// graph-sized stamp/local arrays per call. Entries are bound to one parent
// graph; a pooled extractor for a different graph is simply discarded.
var explainExtractors sync.Pool

func borrowExtractor(g *graph.Bipartite) *graph.SubgraphExtractor {
	//ltr:ignore poolreturn extractor bound to a different graph is intentionally dropped for GC; the match case transfers ownership to the caller, who Puts it back
	if e, _ := explainExtractors.Get().(*graph.SubgraphExtractor); e != nil && e.Graph() == g {
		return e
	}
	return graph.NewSubgraphExtractor(g)
}

// Anchor attributes a share of a recommendation to one of the user's rated
// items: the probability that a random walk starting at the candidate item
// is absorbed at that particular member of S_q.
type Anchor struct {
	Item        int     // a rated item of the query user
	Probability float64 // absorption share, sums to ~1 over all anchors
}

// ExplainAbsorption explains why the Absorbing Time / Absorbing Cost
// family would recommend `candidate` to user u: it decomposes the
// candidate's absorption mass across the user's rated items, so "because
// you rated X" comes with an actual probability. Returns anchors sorted by
// descending share. The computation runs |S_q| absorption solves on the
// Algorithm 1 subgraph — a diagnostic path, not a ranking hot path.
func ExplainAbsorption(g *graph.Bipartite, u, candidate int, opts WalkOptions) ([]Anchor, error) {
	if err := validateUser(u, g.NumUsers()); err != nil {
		return nil, err
	}
	if candidate < 0 || candidate >= g.NumItems() {
		return nil, fmt.Errorf("core: candidate item %d out of range [0,%d)", candidate, g.NumItems())
	}
	opts = opts.withDefaults()
	absorb, err := userItemNodes(g, u)
	if err != nil {
		return nil, err
	}
	for _, node := range absorb {
		if g.ItemIndex(node) == candidate {
			return nil, fmt.Errorf("core: candidate %d is already rated by user %d", candidate, u)
		}
	}
	ext := borrowExtractor(g)
	defer explainExtractors.Put(ext)
	sg, err := ext.Extract(absorb, opts.MaxSubgraphItems)
	if err != nil {
		return nil, fmt.Errorf("core: subgraph: %w", err)
	}
	candLocal, ok := sg.LocalNode(g.ItemNode(candidate))
	if !ok {
		return nil, fmt.Errorf("core: candidate %d outside the user's subgraph (µ=%d)", candidate, opts.MaxSubgraphItems)
	}
	chain, err := markov.NewChainWithDegrees(sg.Adjacency(), sg.Degrees())
	if err != nil {
		return nil, fmt.Errorf("core: chain: %w", err)
	}
	absorbLocal := make([]int, len(absorb))
	for k, node := range absorb {
		l, ok := sg.LocalNode(node)
		if !ok {
			return nil, fmt.Errorf("core: absorbing node %d missing from subgraph", node)
		}
		absorbLocal[k] = l
	}
	anchors := make([]Anchor, 0, len(absorb))
	for k, node := range absorb {
		b, err := chain.AbsorptionProbability(absorbLocal, absorbLocal[k])
		if err != nil {
			return nil, fmt.Errorf("core: absorption solve: %w", err)
		}
		p := b[candLocal]
		if p > 0 {
			anchors = append(anchors, Anchor{Item: g.ItemIndex(node), Probability: p})
		}
	}
	sort.Slice(anchors, func(a, b int) bool {
		if anchors[a].Probability != anchors[b].Probability {
			return anchors[a].Probability > anchors[b].Probability
		}
		return anchors[a].Item < anchors[b].Item
	})
	return anchors, nil
}
