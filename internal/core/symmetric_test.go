package core

import (
	"math"
	"testing"

	"longtailrec/internal/entropy"
)

func TestSymmetricCostValidation(t *testing.T) {
	g := figure2Graph(t)
	ue := []float64{1, 1, 1, 1, 1}
	ie := []float64{1, 1, 1, 1, 1, 1}
	if _, err := NewSymmetricAbsorbingCost(g, "AC3", ue[:2], ie, CostOptions{}); err == nil {
		t.Fatal("short user entropies accepted")
	}
	if _, err := NewSymmetricAbsorbingCost(g, "AC3", ue, ie[:3], CostOptions{}); err == nil {
		t.Fatal("short item entropies accepted")
	}
	bad := append([]float64(nil), ie...)
	bad[0] = math.NaN()
	if _, err := NewSymmetricAbsorbingCost(g, "AC3", ue, bad, CostOptions{}); err == nil {
		t.Fatal("NaN item entropy accepted")
	}
	neg := append([]float64(nil), ue...)
	neg[2] = -1
	if _, err := NewSymmetricAbsorbingCost(g, "AC3", neg, ie, CostOptions{}); err == nil {
		t.Fatal("negative user entropy accepted")
	}
}

func TestSymmetricCostUniformMatchesAT(t *testing.T) {
	// With all entropies = 1 (above the floor), every step costs 1, so the
	// symmetric cost must equal the absorbing time.
	g := figure2Graph(t)
	ones5 := []float64{1, 1, 1, 1, 1}
	ones6 := []float64{1, 1, 1, 1, 1, 1}
	ac3, err := NewSymmetricAbsorbingCost(g, "AC3u", ones5, ones6,
		CostOptions{WalkOptions: WalkOptions{Exact: true}})
	if err != nil {
		t.Fatal(err)
	}
	at := NewAbsorbingTime(g, WalkOptions{Exact: true})
	s3, err := ac3.ScoreItems(4)
	if err != nil {
		t.Fatal(err)
	}
	st, err := at.ScoreItems(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s3 {
		if math.IsInf(s3[i], -1) != math.IsInf(st[i], -1) {
			t.Fatalf("reachability differs at %d", i)
		}
		if !math.IsInf(s3[i], -1) && math.Abs(s3[i]-st[i]) > 1e-9 {
			t.Fatalf("uniform AC3 %v != AT %v at item %d", s3[i], st[i], i)
		}
	}
}

func TestSymmetricCostPenalizesPopularHubs(t *testing.T) {
	// Raising only the popular item M1's entropy must increase costs of
	// walks that pass through it, lowering M1-adjacent candidates relative
	// to a run with uniform item costs.
	g := figure2Graph(t)
	d := figure2Dataset(t)
	ue := entropy.AllItemBased(d)
	uniform := make([]float64, 6)
	for i := range uniform {
		uniform[i] = 1
	}
	spiked := append([]float64(nil), uniform...)
	spiked[0] = 5 // M1 becomes an expensive hub
	base, err := NewSymmetricAbsorbingCost(g, "base", ue, uniform,
		CostOptions{WalkOptions: WalkOptions{Exact: true}})
	if err != nil {
		t.Fatal(err)
	}
	spikedRec, err := NewSymmetricAbsorbingCost(g, "spiked", ue, spiked,
		CostOptions{WalkOptions: WalkOptions{Exact: true}})
	if err != nil {
		t.Fatal(err)
	}
	sBase, err := base.ScoreItems(4)
	if err != nil {
		t.Fatal(err)
	}
	sSpiked, err := spikedRec.ScoreItems(4)
	if err != nil {
		t.Fatal(err)
	}
	// Cost of reaching absorption from M1 itself must rise strictly more
	// than the cost from M4 (whose walks traverse M1 less).
	deltaM1 := (-sSpiked[0]) - (-sBase[0])
	deltaM4 := (-sSpiked[3]) - (-sBase[3])
	if deltaM1 <= deltaM4 {
		t.Fatalf("spiking M1's entropy should hit M1 hardest: ΔM1=%v ΔM4=%v", deltaM1, deltaM4)
	}
}

func TestSymmetricCostRecommends(t *testing.T) {
	g := figure2Graph(t)
	d := figure2Dataset(t)
	ac3, err := NewSymmetricAbsorbingCost(g, "AC3",
		entropy.AllItemBased(d), entropy.AllItemEntropy(d),
		CostOptions{WalkOptions: WalkOptions{Exact: true}})
	if err != nil {
		t.Fatal(err)
	}
	if ac3.Name() != "AC3" {
		t.Fatalf("name %q", ac3.Name())
	}
	recs, err := ac3.Recommend(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("recs %v", recs)
	}
	// The niche M4 stays on top under the symmetric model too.
	if recs[0].Item != 3 {
		t.Fatalf("AC3 top rec %d, want 3 (M4)", recs[0].Item)
	}
	for _, r := range recs {
		if r.Item == 1 || r.Item == 2 {
			t.Fatal("rated item recommended")
		}
	}
}
