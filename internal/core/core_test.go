package core

import (
	"errors"
	"math"
	"testing"

	"longtailrec/internal/dataset"
	"longtailrec/internal/entropy"
	"longtailrec/internal/graph"
)

// figure2Graph reproduces the paper's Figure 2 rating table.
func figure2Graph(t testing.TB) *graph.Bipartite {
	t.Helper()
	g, err := graph.FromRatings(5, 6, []graph.Rating{
		{User: 0, Item: 0, Weight: 5}, {User: 0, Item: 1, Weight: 3}, {User: 0, Item: 4, Weight: 3}, {User: 0, Item: 5, Weight: 5},
		{User: 1, Item: 0, Weight: 5}, {User: 1, Item: 1, Weight: 4}, {User: 1, Item: 2, Weight: 5}, {User: 1, Item: 4, Weight: 4}, {User: 1, Item: 5, Weight: 5},
		{User: 2, Item: 0, Weight: 4}, {User: 2, Item: 1, Weight: 5}, {User: 2, Item: 2, Weight: 4},
		{User: 3, Item: 2, Weight: 5}, {User: 3, Item: 3, Weight: 5},
		{User: 4, Item: 1, Weight: 4}, {User: 4, Item: 2, Weight: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func figure2Dataset(t testing.TB) *dataset.Dataset {
	t.Helper()
	d, err := dataset.New(5, 6, []dataset.Rating{
		{User: 0, Item: 0, Score: 5}, {User: 0, Item: 1, Score: 3}, {User: 0, Item: 4, Score: 3}, {User: 0, Item: 5, Score: 5},
		{User: 1, Item: 0, Score: 5}, {User: 1, Item: 1, Score: 4}, {User: 1, Item: 2, Score: 5}, {User: 1, Item: 4, Score: 4}, {User: 1, Item: 5, Score: 5},
		{User: 2, Item: 0, Score: 4}, {User: 2, Item: 1, Score: 5}, {User: 2, Item: 2, Score: 4},
		{User: 3, Item: 2, Score: 5}, {User: 3, Item: 3, Score: 5},
		{User: 4, Item: 1, Score: 4}, {User: 4, Item: 2, Score: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestHittingTimeFigure2(t *testing.T) {
	g := figure2Graph(t)
	ht := NewHittingTime(g, WalkOptions{Exact: true})
	if ht.Name() != "HT" {
		t.Fatalf("name %q", ht.Name())
	}
	recs, err := ht.Recommend(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The §3.3 worked example: U5's ranking is M4, M1, M5, M6 (items
	// 3, 0, 4, 5), and the rated M2/M3 are excluded.
	want := []int{3, 0, 4, 5}
	if len(recs) != 4 {
		t.Fatalf("got %d recs", len(recs))
	}
	for k, w := range want {
		if recs[k].Item != w {
			t.Fatalf("rec[%d] = item %d, want %d (full: %+v)", k, recs[k].Item, w, recs)
		}
	}
	for _, r := range recs {
		if r.Item == 1 || r.Item == 2 {
			t.Fatal("rated item recommended")
		}
	}
}

func TestHittingTimeTruncatedMatchesExactRanking(t *testing.T) {
	g := figure2Graph(t)
	exact := NewHittingTime(g, WalkOptions{Exact: true})
	trunc := NewHittingTime(g, WalkOptions{Iterations: 15})
	re, err := exact.Recommend(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := trunc.Recommend(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for k := range re {
		if re[k].Item != rt[k].Item {
			t.Fatalf("τ=15 ranking diverges at %d: %+v vs %+v", k, rt, re)
		}
	}
}

func TestAbsorbingTimeFigure2(t *testing.T) {
	g := figure2Graph(t)
	at := NewAbsorbingTime(g, WalkOptions{Exact: true})
	if at.Name() != "AT" {
		t.Fatalf("name %q", at.Name())
	}
	recs, err := at.Recommend(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("got %d recs, want 4 unrated items", len(recs))
	}
	// The niche, taste-adjacent M4 (item 3, rated only by U4 who shares
	// M3 with U5) must beat the generic popular M1's cohort... at minimum
	// it must be ranked first as in the HT example.
	if recs[0].Item != 3 {
		t.Fatalf("AT top rec = %d, want 3 (M4); recs %+v", recs[0].Item, recs)
	}
	// Scores are negated times: all strictly negative and descending.
	prev := math.Inf(1)
	for _, r := range recs {
		if r.Score >= 0 {
			t.Fatalf("score %v not negative", r.Score)
		}
		if r.Score > prev {
			t.Fatal("recs not sorted by score")
		}
		prev = r.Score
	}
}

func TestAbsorbingTimeEqualsHittingTimeForSingletonSet(t *testing.T) {
	// A user with exactly one rated item: AT's absorbing set is that one
	// item node — still a different ranking than HT (which absorbs at the
	// user), but AT must agree with direct absorbing-time computation.
	g, err := graph.FromRatings(3, 4, []graph.Rating{
		{User: 0, Item: 0, Weight: 5},
		{User: 1, Item: 0, Weight: 4}, {User: 1, Item: 1, Weight: 4}, {User: 1, Item: 2, Weight: 2},
		{User: 2, Item: 2, Weight: 5}, {User: 2, Item: 3, Weight: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	at := NewAbsorbingTime(g, WalkOptions{Exact: true})
	scores, err := at.ScoreItems(0)
	if err != nil {
		t.Fatal(err)
	}
	if scores[0] != 0 {
		t.Fatalf("absorbing item's own time should be 0, got %v", -scores[0])
	}
	for i := 1; i < 4; i++ {
		if math.IsInf(scores[i], -1) {
			t.Fatalf("item %d unreachable", i)
		}
		if -scores[i] <= 0 {
			t.Fatalf("item %d time %v", i, -scores[i])
		}
	}
}

func TestColdUser(t *testing.T) {
	g, err := graph.FromRatings(2, 2, []graph.Rating{{User: 0, Item: 0, Weight: 5}})
	if err != nil {
		t.Fatal(err)
	}
	at := NewAbsorbingTime(g, WalkOptions{})
	if _, err := at.ScoreItems(1); !errors.Is(err, ErrColdUser) {
		t.Fatalf("cold user error = %v", err)
	}
	entropies := make([]float64, 2)
	ac, err := NewAbsorbingCost(g, "AC1", entropies, CostOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ac.ScoreItems(1); !errors.Is(err, ErrColdUser) {
		t.Fatalf("cold user error = %v", err)
	}
	// HT anchors at the user node itself, which is isolated: every item
	// is unreachable, so no recommendations — but no error either.
	ht := NewHittingTime(g, WalkOptions{Exact: true})
	recs, err := ht.Recommend(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("isolated user got recs %+v", recs)
	}
}

func TestAbsorbingCostValidation(t *testing.T) {
	g := figure2Graph(t)
	if _, err := NewAbsorbingCost(g, "AC1", []float64{1}, CostOptions{}); err == nil {
		t.Fatal("wrong entropy length accepted")
	}
	if _, err := NewAbsorbingCost(g, "AC1", []float64{1, 1, 1, 1, -1}, CostOptions{}); err == nil {
		t.Fatal("negative entropy accepted")
	}
	bad := []float64{1, 1, 1, math.NaN(), 1}
	if _, err := NewAbsorbingCost(g, "AC1", bad, CostOptions{}); err == nil {
		t.Fatal("NaN entropy accepted")
	}
}

func TestAbsorbingCostUniformEntropyMatchesTime(t *testing.T) {
	// With E(u) ≡ 1 and C = 1, every step costs exactly 1, so AC must
	// reproduce AT's values (Eq. 8's special case).
	g := figure2Graph(t)
	ones := []float64{1, 1, 1, 1, 1}
	ac, err := NewAbsorbingCost(g, "ACu", ones, CostOptions{UserCost: 1, WalkOptions: WalkOptions{Exact: true}})
	if err != nil {
		t.Fatal(err)
	}
	at := NewAbsorbingTime(g, WalkOptions{Exact: true})
	sc, err := ac.ScoreItems(4)
	if err != nil {
		t.Fatal(err)
	}
	st, err := at.ScoreItems(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sc {
		if math.IsInf(sc[i], -1) != math.IsInf(st[i], -1) {
			t.Fatalf("reachability differs at item %d", i)
		}
		if !math.IsInf(sc[i], -1) && math.Abs(sc[i]-st[i]) > 1e-9 {
			t.Fatalf("uniform-entropy AC %v != AT %v at item %d", sc[i], st[i], i)
		}
	}
}

func TestAbsorbingCostPrefersSpecificUsersPath(t *testing.T) {
	// The §4.2 motivating example: M3 is rated 5 by both the generalist U2
	// and the specialist U4. With entropy costs, the walk through U4 is
	// cheaper, so U4's other item (M4) must gain rank relative to the AT
	// ranking for query user U5.
	g := figure2Graph(t)
	d := figure2Dataset(t)
	ent := entropy.AllItemBased(d)
	// Sanity: U2 (user 1, five items) is more entropic than U4 (user 3).
	if !(ent[1] > ent[3]) {
		t.Fatalf("premise: E(U2)=%v should exceed E(U4)=%v", ent[1], ent[3])
	}
	ac, err := NewAbsorbingCost(g, "AC1", ent, CostOptions{WalkOptions: WalkOptions{Exact: true}})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := ac.Recommend(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Item != 3 {
		t.Fatalf("AC1 top rec = %d, want 3 (M4); recs %+v", recs[0].Item, recs)
	}
	// M4's margin over M1 must widen vs AT: compare normalized gaps.
	at := NewAbsorbingTime(g, WalkOptions{Exact: true})
	sAC, err := ac.ScoreItems(4)
	if err != nil {
		t.Fatal(err)
	}
	sAT, err := at.ScoreItems(4)
	if err != nil {
		t.Fatal(err)
	}
	gapAC := (-sAC[0]) - (-sAC[3]) // cost(M1) - cost(M4)
	gapAT := (-sAT[0]) - (-sAT[3])
	relAC := gapAC / (-sAC[3])
	relAT := gapAT / (-sAT[3])
	if relAC <= relAT {
		t.Fatalf("entropy cost did not widen M4's relative margin: %.4f vs %.4f", relAC, relAT)
	}
}

func TestSubgraphBudgetLimitsScoring(t *testing.T) {
	// With a tiny µ, far-away items stay unscored (-Inf) instead of
	// receiving garbage values.
	g := figure2Graph(t)
	ht := NewHittingTime(g, WalkOptions{MaxSubgraphItems: 1, Iterations: 10})
	scores, err := ht.ScoreItems(3) // U4 rated M3, M4
	if err != nil {
		t.Fatal(err)
	}
	scored := 0
	for _, s := range scores {
		if !math.IsInf(s, -1) {
			scored++
		}
	}
	if scored == 0 || scored == g.NumItems() {
		t.Fatalf("µ=1 scored %d of %d items; expected a strict subset", scored, g.NumItems())
	}
}

func TestFuncRecommender(t *testing.T) {
	g := figure2Graph(t)
	pop := []float64{3, 4, 4, 1, 2, 2}
	fr, err := NewFuncRecommender("Pop", g, func(u int) ([]float64, error) {
		out := make([]float64, len(pop))
		copy(out, pop)
		return out, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if fr.Name() != "Pop" {
		t.Fatalf("name %q", fr.Name())
	}
	recs, err := fr.Recommend(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// U5 rated items 1, 2 (the most popular); top unrated by popularity is
	// item 0 (pop 3) then 4 (pop 2, ties with 5 break low).
	if len(recs) != 2 || recs[0].Item != 0 || recs[1].Item != 4 {
		t.Fatalf("recs %+v", recs)
	}
}

func TestFuncRecommenderValidation(t *testing.T) {
	g := figure2Graph(t)
	if _, err := NewFuncRecommender("", g, func(int) ([]float64, error) { return nil, nil }); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := NewFuncRecommender("x", nil, nil); err == nil {
		t.Fatal("nil graph accepted")
	}
	fr, err := NewFuncRecommender("short", g, func(int) ([]float64, error) { return []float64{1}, nil })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fr.ScoreItems(0); err == nil {
		t.Fatal("short score vector accepted")
	}
	if _, err := fr.ScoreItems(-1); err == nil {
		t.Fatal("negative user accepted")
	}
}

func TestTopK(t *testing.T) {
	scores := []float64{1, 5, math.Inf(-1), 3, 5, math.NaN()}
	got := TopK(scores, 3, map[int]struct{}{3: {}})
	// Expect items 1 and 4 (score 5, tie → lower index first), then 0.
	if len(got) != 3 || got[0].Item != 1 || got[1].Item != 4 || got[2].Item != 0 {
		t.Fatalf("TopK = %+v", got)
	}
	if TopK(scores, 0, nil) != nil {
		t.Fatal("k=0 should return nil")
	}
	if got := TopK(scores, 100, nil); len(got) != 4 {
		t.Fatalf("k=100 returned %d", len(got))
	}
}

func TestRankOf(t *testing.T) {
	scores := []float64{0.9, 0.5, 0.7, 0.5}
	cands := []int{0, 1, 2, 3}
	if r := RankOf(scores, 0, cands); r != 1 {
		t.Fatalf("rank of best = %d", r)
	}
	if r := RankOf(scores, 2, cands); r != 2 {
		t.Fatalf("rank of second = %d", r)
	}
	// Tie at 0.5: item 1 beats item 3 (lower index pessimism).
	if r := RankOf(scores, 3, cands); r != 4 {
		t.Fatalf("rank of tied-last = %d", r)
	}
	if r := RankOf(scores, 1, cands); r != 3 {
		t.Fatalf("rank of tied-first = %d", r)
	}
	if r := RankOf(scores, 2, []int{0, 1}); r != 0 {
		t.Fatalf("rank of absent target = %d", r)
	}
}

func TestWalkRecommendersExcludeRated(t *testing.T) {
	g := figure2Graph(t)
	d := figure2Dataset(t)
	ent := entropy.AllItemBased(d)
	ac, err := NewAbsorbingCost(g, "AC1", ent, CostOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []Recommender{
		NewHittingTime(g, WalkOptions{}),
		NewAbsorbingTime(g, WalkOptions{}),
		ac,
	} {
		for u := 0; u < g.NumUsers(); u++ {
			recs, err := rec.Recommend(u, 10)
			if err != nil {
				t.Fatalf("%s user %d: %v", rec.Name(), u, err)
			}
			items, _ := g.UserItems(u)
			rated := map[int]struct{}{}
			for _, i := range items {
				rated[i] = struct{}{}
			}
			for _, r := range recs {
				if _, bad := rated[r.Item]; bad {
					t.Fatalf("%s recommended rated item %d to user %d", rec.Name(), r.Item, u)
				}
			}
		}
	}
}
