package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"longtailrec/internal/graph"
	"longtailrec/internal/markov"
	"longtailrec/internal/topk"
)

// ItemScore pairs an item index with its walk score — the compact,
// subgraph-resident result of a query. Only items inside the BFS subgraph
// appear; everything else is implicitly -Inf.
type ItemScore struct {
	Item  int
	Score float64
}

// walkSpec describes the query shape of one walk recommender: where the
// walk is anchored and which entry-cost model (Eq. 9) applies.
type walkSpec struct {
	// seedUser anchors seeds/absorbing at the query user's own node (HT);
	// otherwise the user's rated item nodes S_q are used (AT/AC).
	seedUser bool
	// costed switches from unit step costs (hitting/absorbing time) to the
	// Eq. 9 entry-cost model below.
	costed bool
	// userEnter[u] is the cost of entering user u (their entropy, floored).
	userEnter []float64
	// itemEnter[i] is the cost of entering item i; nil means the constant
	// userCost, the paper's C.
	itemEnter []float64
	userCost  float64
	// enterFloor is the entry cost charged for users (and, under the
	// symmetric model, items) admitted to the graph after the entropy
	// vectors were computed: a newcomer has no rating history, so their
	// entropy is zero and floors to the configured minimum.
	enterFloor float64
}

// Engine is the pooled walk query executor behind HT/AT/AC1/AC2 and the
// symmetric-cost extension (Algorithm 1's production path). Each query
// borrows a per-worker scratch — subgraph extractor, chain buffers, compact
// score slice — from a sync.Pool, so steady-state queries allocate only
// their result slices and the whole engine is safe for concurrent use.
type Engine struct {
	g    *graph.Bipartite
	opts WalkOptions
	pool sync.Pool
}

// NewEngine builds an engine over the graph with the given walk options.
// Scratch capacities are not frozen here: every query re-sizes off the
// graph's live node and item counts, so the engine keeps serving while
// the universe grows under it.
func NewEngine(g *graph.Bipartite, opts WalkOptions) *Engine {
	e := &Engine{g: g, opts: opts.withDefaults()}
	e.pool.New = func() any {
		return &engineScratch{ext: graph.NewSubgraphExtractor(g)}
	}
	return e
}

// Options returns the walk options the engine runs with (defaults applied).
func (e *Engine) Options() WalkOptions { return e.opts }

// engineScratch is one worker's reusable query state.
type engineScratch struct {
	ext     *graph.SubgraphExtractor
	chain   markov.Chain
	mkv     markov.ChainScratch
	absorb  []int       // local ids of absorbing states (exact path)
	compact []ItemScore // per-query compact result

	// exclStamp[item] == exclEpoch marks an item excluded from TopK
	// (already rated by the query user, or in Request.ExcludeItems).
	exclStamp []int
	exclEpoch int

	// candStamp[item] == candEpoch marks an item admitted by
	// Request.CandidateItems. Touched only by option-carrying requests.
	candStamp []int
	candEpoch int

	// popBuf / popSorted are the live popularity vector and its sorted
	// copy for the Request.LongTailOnly percentile cutoff. Touched only
	// by option-carrying requests.
	popBuf, popSorted []int
}

// scoreCompact runs Algorithm 1 for user u inside scr and returns the
// compact (item, score) slice, which aliases scr and is valid until the
// scratch's next query. Seeds occupy local ids 0..s-1 of the subgraph, so
// the absorbing set needs no per-node lookups.
//
// ctx, when non-nil, is checked at the subgraph-extraction boundaries
// and between the τ sweeps, so a cancelled or deadlined query aborts
// mid-walk; every return path leaves scr reusable, so the pooled
// scratch is never leaked. A nil ctx costs nothing.
//
// fp, when non-nil, is filled with the query's dependency fingerprint:
// the graph's write-generation watermark at extraction plus a bloom of
// every subgraph node AND the query user's node (the user's own row
// shapes the seed set and the rated-item exclusion, so a write there
// must invalidate even when the user fell outside the truncated
// subgraph). A nil fp costs nothing — the uncached hot path passes nil.
//
//ltr:allocfree
func (e *Engine) scoreCompact(ctx context.Context, scr *engineScratch, u int, spec walkSpec, fp *graph.Fingerprint) ([]ItemScore, error) {
	if err := validateUser(u, e.g.NumUsers()); err != nil {
		return nil, err
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: query aborted before extraction: %w", err)
		}
	}
	userNode := e.g.UserNode(u)
	var seeds []int
	if spec.seedUser {
		scr.absorb = append(scr.absorb[:0], userNode)
		seeds = scr.absorb
	} else {
		// S_q as node ids is exactly the user node's neighbor list
		// (aliased parent storage; Extract only reads it).
		nbrs, _ := e.g.Neighbors(userNode)
		if len(nbrs) == 0 {
			return nil, fmt.Errorf("%w: user %d", ErrColdUser, u)
		}
		seeds = nbrs
	}
	sg, err := scr.ext.Extract(seeds, e.opts.MaxSubgraphItems)
	if err != nil {
		return nil, fmt.Errorf("core: subgraph: %w", err)
	}
	if fp != nil {
		fp.Reset(sg.WriteGen())
		fp.AddNode(userNode)
		for l, nl := 0, sg.Len(); l < nl; l++ {
			fp.AddNode(sg.OriginalNode(l))
		}
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: query aborted after extraction: %w", err)
		}
	}
	if err := scr.chain.Reset(sg.Adjacency(), sg.Degrees()); err != nil {
		return nil, fmt.Errorf("core: chain: %w", err)
	}
	n := sg.Len()
	numAbsorb := len(seeds) // seeds are distinct node ids, kept in order
	scr.mkv.Resize(n)
	var enter []float64
	if spec.costed {
		enter = scr.mkv.Enter
		for l := 0; l < n; l++ {
			orig := sg.OriginalNode(l)
			switch {
			case e.g.IsUserNode(orig):
				// Users (and under AC3, items) past the end of the entropy
				// vector joined after the model snapshot: they carry the
				// floor cost until the entropies are recomputed.
				if idx := e.g.UserIndex(orig); idx < len(spec.userEnter) {
					enter[l] = spec.userEnter[idx]
				} else {
					enter[l] = spec.enterFloor
				}
			case spec.itemEnter != nil:
				if idx := e.g.ItemIndex(orig); idx < len(spec.itemEnter) {
					enter[l] = spec.itemEnter[idx]
				} else {
					enter[l] = spec.enterFloor
				}
			default:
				enter[l] = spec.userCost
			}
		}
	}
	var times []float64
	if e.opts.Exact {
		// Diagnostic path: the linear-system solvers allocate internally,
		// which is acceptable off the truncated production path.
		scr.absorb = scr.absorb[:0]
		for l := 0; l < numAbsorb; l++ {
			scr.absorb = append(scr.absorb, l)
		}
		if !spec.costed {
			times, err = scr.chain.AbsorbingTimeExact(scr.absorb)
		} else {
			step := scr.chain.StepCostsInto(enter, scr.mkv.Nxt)
			times, err = scr.chain.AbsorbingCostExact(scr.absorb, step)
		}
	} else {
		for l := 0; l < numAbsorb; l++ {
			scr.mkv.Mask[l] = true
		}
		times, err = scr.chain.AbsorbingCostFusedCtx(ctx, &scr.mkv, enter, e.opts.Iterations)
	}
	if err != nil {
		return nil, fmt.Errorf("core: absorbing solve: %w", err)
	}
	scr.compact = scr.compact[:0]
	for l, t := range times {
		orig := sg.OriginalNode(l)
		if !e.g.IsItemNode(orig) {
			continue
		}
		if math.IsInf(t, 1) {
			continue // unreachable even inside the subgraph
		}
		scr.compact = append(scr.compact, ItemScore{Item: e.g.ItemIndex(orig), Score: -t})
	}
	return scr.compact, nil
}

// scoreItemsCompact is the pooled public-path variant: it copies the
// compact result out of scratch so the caller owns it.
func (e *Engine) scoreItemsCompact(u int, spec walkSpec) ([]ItemScore, error) {
	scr := e.pool.Get().(*engineScratch)
	defer e.pool.Put(scr)
	compact, err := e.scoreCompact(nil, scr, u, spec, nil)
	if err != nil {
		return nil, err
	}
	out := make([]ItemScore, len(compact))
	copy(out, compact)
	return out, nil
}

// scoreItemsFull spreads the compact result over the full item universe
// (-Inf elsewhere), preserving the historical ScoreItems contract.
func (e *Engine) scoreItemsFull(u int, spec walkSpec) ([]float64, error) {
	scr := e.pool.Get().(*engineScratch)
	defer e.pool.Put(scr)
	compact, err := e.scoreCompact(nil, scr, u, spec, nil)
	if err != nil {
		return nil, err
	}
	scores := make([]float64, e.g.NumItems())
	for i := range scores {
		scores[i] = math.Inf(-1)
	}
	for _, is := range compact {
		scores[is.Item] = is.Score
	}
	return scores, nil
}

// recommendRequest serves one Request inside scr — the native
// RecommenderV2 implementation behind every walk recommender. The
// option-free request takes exactly the legacy path: epoch-stamped
// exclusion of rated items, compact top-k, no per-query allocation
// beyond the result. Options add their own stamped structures
// (ExcludeItems folds into the exclusion stamps, CandidateItems into a
// second stamp array, LongTailOnly into a pooled popularity sort), so
// even the option-carrying paths settle into zero steady-state
// allocation.
func (e *Engine) recommendRequest(scr *engineScratch, req Request, spec walkSpec, algo string, fp *graph.Fingerprint) (Response, error) {
	if err := req.Validate(); err != nil {
		return Response{}, err
	}
	compact, err := e.scoreCompact(req.Ctx, scr, req.User, spec, fp)
	if err != nil {
		return Response{}, err
	}
	// Size the exclusion array off the live item count AFTER scoring: the
	// compact result was extracted under the graph lock, so every item in
	// it is covered. Appending (rather than reallocating) preserves the
	// capacity across queries; the zeroed extension can never equal the
	// bumped epoch.
	if n := e.g.NumItems(); n > len(scr.exclStamp) {
		scr.exclStamp = append(scr.exclStamp, make([]int, n-len(scr.exclStamp))...)
	}
	scr.exclEpoch++
	rated, _ := e.g.Neighbors(e.g.UserNode(req.User))
	for _, node := range rated {
		// A write racing this query can hand the user an item admitted
		// after the exclusion array was sized; it cannot be in compact
		// (older snapshot), so skipping the stamp is sound.
		if idx := e.g.ItemIndex(node); idx < len(scr.exclStamp) {
			scr.exclStamp[idx] = scr.exclEpoch
		}
	}
	for _, idx := range req.ExcludeItems {
		if idx < len(scr.exclStamp) {
			scr.exclStamp[idx] = scr.exclEpoch
		}
	}
	hasCand := req.CandidateItems != nil
	if hasCand {
		if n := e.g.NumItems(); n > len(scr.candStamp) {
			scr.candStamp = append(scr.candStamp, make([]int, n-len(scr.candStamp))...)
		}
		scr.candEpoch++
		for _, idx := range req.CandidateItems {
			if idx < len(scr.candStamp) {
				scr.candStamp[idx] = scr.candEpoch
			}
		}
	}
	cutoff := 0
	if req.LongTailOnly > 0 {
		scr.popBuf = e.g.ItemPopularityInto(scr.popBuf)
		cutoff, scr.popSorted = longTailCutoff(scr.popBuf, req.LongTailOnly, scr.popSorted)
	}
	sel := topk.NewSelector(req.K)
	for _, is := range compact {
		if scr.exclStamp[is.Item] == scr.exclEpoch || math.IsNaN(is.Score) {
			continue
		}
		if hasCand && (is.Item >= len(scr.candStamp) || scr.candStamp[is.Item] != scr.candEpoch) {
			continue
		}
		if req.LongTailOnly > 0 && is.Item < len(scr.popBuf) && scr.popBuf[is.Item] > cutoff {
			continue
		}
		sel.Offer(is.Item, is.Score)
	}
	items := sel.Take()
	out := make([]Scored, len(items))
	for i, it := range items {
		out[i] = Scored{Item: it.ID, Score: it.Score}
	}
	return Response{Items: out, Epoch: e.g.Epoch(), Algo: algo}, nil
}

// recommend is the single-query pooled entry point — the legacy
// Recommend(u, k) surface as a thin wrapper over recommendRequest.
func (e *Engine) recommend(u, k int, spec walkSpec) ([]Scored, error) {
	resp, err := e.recommendRequestPooled(Request{User: u, K: k}, spec, "", nil)
	if err != nil {
		return nil, err
	}
	return resp.Items, nil
}

// recommendRequestPooled borrows a scratch for one recommendRequest.
func (e *Engine) recommendRequestPooled(req Request, spec walkSpec, algo string, fp *graph.Fingerprint) (Response, error) {
	scr := e.pool.Get().(*engineScratch)
	defer e.pool.Put(scr)
	return e.recommendRequest(scr, req, spec, algo, fp)
}

// recommendRequestBatch serves many Requests concurrently. parallelism
// <= 0 means GOMAXPROCS. Each worker borrows one scratch for its whole
// share of the batch, and each request's own context is honored. Cold
// users (no rated items) yield a zero Response rather than failing the
// batch; any other error — including a cancelled per-request context —
// aborts and is returned. fps, when non-nil, must align with reqs: each
// request's dependency fingerprint is written to fps[i] (cold users
// leave an invalid zero fingerprint).
func (e *Engine) recommendRequestBatch(reqs []Request, parallelism int, spec walkSpec, algo string, fps []graph.Fingerprint) ([]Response, error) {
	out := make([]Response, len(reqs))
	if len(reqs) == 0 {
		return out, nil
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(reqs) {
		parallelism = len(reqs)
	}
	var (
		next     atomic.Int64
		failed   atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	next.Store(-1)
	wg.Add(parallelism)
	for w := 0; w < parallelism; w++ {
		go func() {
			defer wg.Done()
			scr := e.pool.Get().(*engineScratch)
			defer e.pool.Put(scr)
			for {
				i := int(next.Add(1))
				if i >= len(reqs) || failed.Load() {
					return
				}
				var fp *graph.Fingerprint
				if fps != nil {
					fp = &fps[i]
				}
				resp, err := e.recommendRequest(scr, reqs[i], spec, algo, fp)
				if err != nil {
					if errors.Is(err, ErrColdUser) {
						continue // cold user: leave out[i] zero
					}
					errOnce.Do(func() { firstErr = fmt.Errorf("core: batch user %d: %w", reqs[i].User, err) })
					failed.Store(true)
					return
				}
				out[i] = resp
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
