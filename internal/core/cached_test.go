package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"sync"
	"testing"

	"longtailrec/internal/cache"
	"longtailrec/internal/graph"
)

// newCachedAT builds an AT recommender over the Figure 2 graph plus its
// cached twin sharing the same graph (and therefore the same epoch).
func newCachedAT(t testing.TB, c *cache.Cache[CacheEntry]) (*graph.Bipartite, *AbsorbingTime, *CachedRecommender) {
	t.Helper()
	g := figure2Graph(t)
	at := NewAbsorbingTime(g, WalkOptions{Iterations: 15})
	cached, err := NewCachedRecommender(at, g, c)
	if err != nil {
		t.Fatal(err)
	}
	return g, at, cached
}

// TestCachedGoldenEquivalence is the golden equivalence check of the
// serving layer: for every user, the cached path (cold miss AND warm hit)
// returns results byte-identical to the uncached engine.
func TestCachedGoldenEquivalence(t *testing.T) {
	c := cache.New[CacheEntry](128)
	g, at, cached := newCachedAT(t, c)
	uncachedTwin := NewAbsorbingTime(g, WalkOptions{Iterations: 15})
	for u := 0; u < g.NumUsers(); u++ {
		want, err := uncachedTwin.Recommend(u, 4)
		if err != nil {
			t.Fatal(err)
		}
		miss, err := cached.Recommend(u, 4)
		if err != nil {
			t.Fatal(err)
		}
		hit, err := cached.Recommend(u, 4)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := at.Recommend(u, 4)
		if err != nil {
			t.Fatal(err)
		}
		for name, got := range map[string][]Scored{"miss": miss, "hit": hit, "direct": direct} {
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("user %d %s path diverged:\nwant %+v\ngot  %+v", u, name, want, got)
			}
			wb, _ := json.Marshal(want)
			gb, _ := json.Marshal(got)
			if !bytes.Equal(wb, gb) {
				t.Fatalf("user %d %s path not byte-identical:\n%s\n%s", u, name, wb, gb)
			}
		}
	}
	st := c.Stats()
	if st.Misses == 0 || st.Hits == 0 {
		t.Fatalf("expected both misses and hits, got %+v", st)
	}
}

// TestCachedEpochInvalidation pins the invalidation contract: a live write
// bumps the epoch, so exactly the entries computed before it become
// unreachable (and sweepable), while same-epoch entries keep hitting.
func TestCachedEpochInvalidation(t *testing.T) {
	c := cache.New[CacheEntry](128)
	g, _, cached := newCachedAT(t, c)

	// Warm the cache for every user at epoch 0.
	before := make(map[int][]Scored)
	for u := 0; u < g.NumUsers(); u++ {
		recs, err := cached.Recommend(u, 4)
		if err != nil {
			t.Fatal(err)
		}
		before[u] = recs
	}
	warm := c.Stats()
	if warm.Misses != uint64(g.NumUsers()) || c.Len() != g.NumUsers() {
		t.Fatalf("warmup: %+v len=%d", warm, c.Len())
	}
	// Every repeat at the same epoch hits.
	if _, err := cached.Recommend(1, 4); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits == 0 {
		t.Fatalf("same-epoch repeat did not hit: %+v", st)
	}

	// A write into user 4's neighborhood: item 3 (M4, previously only
	// rated by user 3) gets a rating from user 4.
	epochBefore := g.Epoch()
	if err := g.AddRating(4, 3, 5); err != nil {
		t.Fatal(err)
	}
	if g.Epoch() != epochBefore+1 {
		t.Fatalf("epoch %d -> %d, want +1", epochBefore, g.Epoch())
	}

	// Next query recomputes (the write touched user 4's node, so the
	// entry's fingerprint rules it stale) and reflects the write: item 3
	// is now rated by user 4 and must be excluded.
	missesBefore := c.Stats().Misses
	after, err := cached.Recommend(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Misses; got != missesBefore+1 {
		t.Fatalf("post-write query was served stale: misses %d -> %d", missesBefore, got)
	}
	for _, r := range after {
		if r.Item == 3 {
			t.Fatalf("stale result: newly rated item 3 recommended: %+v", after)
		}
	}
	if reflect.DeepEqual(before[4], after) {
		t.Fatalf("write had no effect on user 4's recommendations")
	}

	// The sweep drops exactly the stale entries. The Figure 2 graph is one
	// small connected component, so every user's subgraph (and bloom)
	// covers the written nodes: the epoch-0 entries all rule stale. User
	// 4's recompute overwrote its old entry in place (freshness is no
	// longer part of the key), so exactly NumUsers()-1 stale entries
	// remain to drop.
	if dropped := c.Revalidate(EntryValidator(g)); dropped != g.NumUsers()-1 {
		t.Fatalf("Revalidate dropped %d, want exactly %d stale entries", dropped, g.NumUsers()-1)
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d entries after sweep, want 1", c.Len())
	}
	if _, err := cached.Recommend(4, 4); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits < 2 {
		t.Fatalf("current-epoch entry evicted by sweep: %+v", st)
	}
}

// TestCachedBatch checks the batch path: cached users are served without
// recompute, misses fill the cache, cold users stay nil and uncached.
func TestCachedBatch(t *testing.T) {
	c := cache.New[CacheEntry](128)
	_, at, cached := newCachedAT(t, c)
	users := []int{0, 2, 4}
	want, err := at.RecommendBatch(users, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cached.RecommendBatch(users, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("cold batch diverged:\nwant %+v\ngot  %+v", want, got)
	}
	misses := c.Stats().Misses
	got2, err := cached.RecommendBatch(users, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got2) {
		t.Fatalf("warm batch diverged")
	}
	if c.Stats().Misses != misses {
		t.Fatalf("warm batch recomputed: misses %d -> %d", misses, c.Stats().Misses)
	}
	// Mutating a returned list must not corrupt the cache.
	got2[0][0].Item = -99
	got3, err := cached.RecommendBatch(users, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got3[0][0].Item == -99 {
		t.Fatal("caller mutation leaked into the cache")
	}
}

// TestCachedColdUserNotCached: errors (cold user) pass through uncached.
func TestCachedColdUser(t *testing.T) {
	c := cache.New[CacheEntry](16)
	g, err := graph.FromRatings(2, 2, []graph.Rating{{User: 0, Item: 0, Weight: 5}})
	if err != nil {
		t.Fatal(err)
	}
	at := NewAbsorbingTime(g, WalkOptions{Iterations: 5})
	cached, err := NewCachedRecommender(at, g, c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cached.Recommend(1, 3); !errors.Is(err, ErrColdUser) {
		t.Fatalf("err = %v, want ErrColdUser", err)
	}
	if c.Len() != 0 {
		t.Fatal("error was cached")
	}
	// The user receives a first rating: the next query succeeds.
	if err := g.AddRating(1, 0, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := cached.Recommend(1, 3); err != nil {
		t.Fatalf("post-write query failed: %v", err)
	}
}

// TestConcurrentCachedRecommend hammers the cached recommender from many
// readers while one writer mutates the live graph — the serving-layer race
// test the Makefile race target runs.
func TestConcurrentCachedRecommend(t *testing.T) {
	c := cache.New[CacheEntry](256)
	g, _, cached := newCachedAT(t, c)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for q := 0; ; q++ {
				select {
				case <-stop:
					return
				default:
				}
				u := (w + q) % g.NumUsers()
				if _, err := cached.Recommend(u, 4); err != nil {
					t.Error(err)
					return
				}
				if q%7 == 0 {
					if _, err := cached.RecommendBatch([]int{0, 2, 4}, 3, 2); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	for w := 0; w < 120; w++ {
		u, i := w%g.NumUsers(), w%g.NumItems()
		if _, err := g.UpsertRating(u, i, 1+float64(w%5)); err != nil {
			t.Fatal(err)
		}
		if w%40 == 39 {
			g.Compact()
			c.Revalidate(EntryValidator(g))
		}
	}
	close(stop)
	wg.Wait()
}

// TestCachedOptionKeyIsolation is the cache-key collision test for the
// Request surface: requests that differ only in their option set must
// never share a cached entry — each option set computes once, is served
// from its own entry afterwards, and returns its own (different) result.
func TestCachedOptionKeyIsolation(t *testing.T) {
	c := cache.New[CacheEntry](128)
	_, at, cached := newCachedAT(t, c)

	plain := Request{User: 0, K: 4}
	filtered := Request{User: 0, K: 4, LongTailOnly: 0.2}

	p1, err := cached.RecommendRequest(plain)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := cached.RecommendRequest(filtered)
	if err != nil {
		t.Fatal(err)
	}
	if p1.CacheHit || f1.CacheHit {
		t.Fatalf("first lookups hit: %+v %+v", p1, f1)
	}
	if reflect.DeepEqual(p1.Items, f1.Items) {
		t.Fatalf("option sets chosen for this test must produce different results, both got %+v", p1.Items)
	}
	// Warm repeats: each option set hits its own entry and returns its
	// own result — never the other's.
	p2, err := cached.RecommendRequest(plain)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := cached.RecommendRequest(filtered)
	if err != nil {
		t.Fatal(err)
	}
	if !p2.CacheHit || !f2.CacheHit {
		t.Fatalf("warm repeats missed: %+v %+v", p2, f2)
	}
	if !reflect.DeepEqual(p1.Items, p2.Items) || !reflect.DeepEqual(f1.Items, f2.Items) {
		t.Fatal("cached results diverged from their cold computes")
	}
	if reflect.DeepEqual(p2.Items, f2.Items) {
		t.Fatal("differently-optioned requests shared a cached result")
	}
	// Exactly two entries: one per option set.
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.Len())
	}
	// Both match their uncached twins.
	wantPlain, err := at.RecommendRequest(plain)
	if err != nil {
		t.Fatal(err)
	}
	wantFiltered, err := at.RecommendRequest(filtered)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantPlain.Items, p2.Items) || !reflect.DeepEqual(wantFiltered.Items, f2.Items) {
		t.Fatal("cached option-set results diverged from the uncached engine")
	}
	// Canonically equal option encodings DO share: a reordered,
	// duplicated exclude list is the same option set.
	e1, err := cached.RecommendRequest(Request{User: 1, K: 4, ExcludeItems: []int{2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := cached.RecommendRequest(Request{User: 1, K: 4, ExcludeItems: []int{0, 2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if e1.CacheHit || !e2.CacheHit {
		t.Fatalf("canonical option sharing broken: %+v %+v", e1, e2)
	}
}

// TestCachedResponseMetadata pins the Response envelope of the cached
// path: epoch stamping, cache-hit marking, and caller ownership of the
// Items slice.
func TestCachedResponseMetadata(t *testing.T) {
	c := cache.New[CacheEntry](128)
	g, _, cached := newCachedAT(t, c)
	miss, err := cached.RecommendRequest(Request{User: 2, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if miss.CacheHit || miss.Epoch != g.Epoch() || miss.Algo != "AT" {
		t.Fatalf("miss metadata: %+v (graph epoch %d)", miss, g.Epoch())
	}
	hit, err := cached.RecommendRequest(Request{User: 2, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit || hit.Epoch != g.Epoch() {
		t.Fatalf("hit metadata: %+v", hit)
	}
	// Mutating a returned list must not corrupt the cache.
	hit.Items[0].Item = -99
	again, err := cached.RecommendRequest(Request{User: 2, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if again.Items[0].Item == -99 {
		t.Fatal("caller mutation leaked into the cache")
	}
	// A live write moves the epoch: the next lookup misses and restamps.
	if err := g.AddRating(2, 4, 5); err != nil {
		t.Fatal(err)
	}
	fresh, err := cached.RecommendRequest(Request{User: 2, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.CacheHit || fresh.Epoch != g.Epoch() {
		t.Fatalf("post-write metadata: %+v (graph epoch %d)", fresh, g.Epoch())
	}
}

// TestCachedSingleflightLeaderCancellation: a singleflight leader whose
// request context is cancelled mid-compute must not poison a
// piggybacked waiter whose own context is live — the waiter retries and
// gets a real result, never the leader's context error.
func TestCachedSingleflightLeaderCancellation(t *testing.T) {
	c := cache.New[CacheEntry](64)
	g := figure2Graph(t)
	at := NewAbsorbingTime(g, WalkOptions{Iterations: 20000}) // ms-scale solve
	cached, err := NewCachedRecommender(at, g, c)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 25; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		var leaderErr, waiterErr error
		wg.Add(2)
		go func() {
			defer wg.Done()
			_, leaderErr = cached.RecommendRequest(Request{Ctx: ctx, User: 0, K: 3})
		}()
		go func() {
			defer wg.Done()
			_, waiterErr = cached.RecommendRequest(Request{User: 0, K: 3})
		}()
		cancel()
		wg.Wait()
		// The cancelled client may get its own context error or (having
		// piggybacked on the healthy flight) a result; the live client
		// must always get a result.
		if leaderErr != nil && !errors.Is(leaderErr, context.Canceled) {
			t.Fatalf("round %d: cancelled client error = %v", round, leaderErr)
		}
		if waiterErr != nil {
			t.Fatalf("round %d: live client inherited failure: %v", round, waiterErr)
		}
		c.Purge() // force a fresh singleflight next round
	}
}
