package core

import (
	"context"
	"errors"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestRecommendRequestEquivalence pins the compatibility contract: the
// no-options Request path returns exactly what the legacy Recommend
// returns, for the engine-native and the adapter implementations.
func TestRecommendRequestEquivalence(t *testing.T) {
	g := figure2Graph(t)
	at := NewAbsorbingTime(g, WalkOptions{Iterations: 15})
	fr, err := NewFuncRecommender("Flat", g, func(u int) ([]float64, error) {
		scores := make([]float64, g.NumItems())
		for i := range scores {
			scores[i] = float64(g.NumItems() - i)
		}
		return scores, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []Recommender{at, fr} {
		v2, ok := rec.(RecommenderV2)
		if !ok {
			t.Fatalf("%s does not implement RecommenderV2", rec.Name())
		}
		for u := 0; u < g.NumUsers(); u++ {
			want, err := rec.Recommend(u, 4)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := v2.RecommendRequest(Request{User: u, K: 4})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, resp.Items) {
				t.Fatalf("%s user %d: Request path diverged:\nwant %+v\ngot  %+v", rec.Name(), u, want, resp.Items)
			}
			if resp.Algo != rec.Name() {
				t.Fatalf("Algo = %q, want %q", resp.Algo, rec.Name())
			}
			if resp.Fallback || resp.CacheHit {
				t.Fatalf("unexpected metadata: %+v", resp)
			}
		}
	}
}

// TestRequestOptionFilters exercises ExcludeItems, CandidateItems and
// LongTailOnly on both the engine-native and the adapter paths, checking
// against the unfiltered ranking.
func TestRequestOptionFilters(t *testing.T) {
	g := figure2Graph(t)
	at := NewAbsorbingTime(g, WalkOptions{Iterations: 15})
	fr, err := NewFuncRecommender("Flat", g, func(u int) ([]float64, error) {
		scores := make([]float64, g.NumItems())
		for i := range scores {
			scores[i] = float64(g.NumItems() - i)
		}
		return scores, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []RecommenderV2{at, fr} {
		base, err := rec.RecommendRequest(Request{User: 0, K: 6})
		if err != nil {
			t.Fatal(err)
		}
		if len(base.Items) == 0 {
			t.Fatalf("%s: empty base ranking", rec.Name())
		}
		first := base.Items[0].Item

		// ExcludeItems removes exactly the excluded item.
		excl, err := rec.RecommendRequest(Request{User: 0, K: 6, ExcludeItems: []int{first}})
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range excl.Items {
			if it.Item == first {
				t.Fatalf("%s: excluded item %d served", rec.Name(), first)
			}
		}
		if want := FilterScored(base.Items, Request{ExcludeItems: []int{first}}, nil); !reflect.DeepEqual(want, excl.Items) {
			t.Fatalf("%s: exclusion diverged from post-filter:\nwant %+v\ngot  %+v", rec.Name(), want, excl.Items)
		}

		// CandidateItems restricts to the slate (duplicates tolerated).
		slate := []int{base.Items[0].Item, base.Items[1].Item, base.Items[0].Item}
		cand, err := rec.RecommendRequest(Request{User: 0, K: 6, CandidateItems: slate})
		if err != nil {
			t.Fatal(err)
		}
		if len(cand.Items) != 2 {
			t.Fatalf("%s: slate of 2 served %d items: %+v", rec.Name(), len(cand.Items), cand.Items)
		}
		for _, it := range cand.Items {
			if it.Item != slate[0] && it.Item != slate[1] {
				t.Fatalf("%s: off-slate item %d served", rec.Name(), it.Item)
			}
		}

		// An empty non-nil slate yields an empty result.
		empty, err := rec.RecommendRequest(Request{User: 0, K: 6, CandidateItems: []int{}})
		if err != nil {
			t.Fatal(err)
		}
		if len(empty.Items) != 0 {
			t.Fatalf("%s: empty slate served %+v", rec.Name(), empty.Items)
		}

		// LongTailOnly keeps only items at or below the percentile cutoff.
		tail, err := rec.RecommendRequest(Request{User: 0, K: 6, LongTailOnly: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		pop := g.ItemPopularity()
		cutoff, _ := longTailCutoff(pop, 0.5, nil)
		for _, it := range tail.Items {
			if pop[it.Item] > cutoff {
				t.Fatalf("%s: item %d popularity %d above cutoff %d", rec.Name(), it.Item, pop[it.Item], cutoff)
			}
		}

		// Out-of-range (or NaN) percentile is rejected as ErrInvalidOptions.
		if _, err := rec.RecommendRequest(Request{User: 0, K: 6, LongTailOnly: 1.5}); !errors.Is(err, ErrInvalidOptions) {
			t.Fatalf("%s: bad percentile error = %v", rec.Name(), err)
		}
		if _, err := rec.RecommendRequest(Request{User: 0, K: 6, LongTailOnly: math.NaN()}); !errors.Is(err, ErrInvalidOptions) {
			t.Fatalf("%s: NaN percentile error = %v", rec.Name(), err)
		}
		if _, err := rec.RecommendRequest(Request{User: 0, K: 6, ExcludeItems: []int{-3}}); !errors.Is(err, ErrInvalidOptions) {
			t.Fatalf("%s: negative exclusion error = %v", rec.Name(), err)
		}
	}
}

// TestOptionsKeyCanonical pins the cache-key encoding: order- and
// duplicate-insensitive for the item lists, "" for the no-options
// request, distinct for distinct option sets.
func TestOptionsKeyCanonical(t *testing.T) {
	if k := (Request{User: 3, K: 10}).OptionsKey(); k != "" {
		t.Fatalf("no-options key = %q, want empty", k)
	}
	a := Request{ExcludeItems: []int{5, 1, 5}, CandidateItems: []int{2, 9}, LongTailOnly: 0.25}
	b := Request{ExcludeItems: []int{1, 5}, CandidateItems: []int{9, 2, 2}, LongTailOnly: 0.25}
	if a.OptionsKey() != b.OptionsKey() {
		t.Fatalf("equivalent option sets encode differently: %q vs %q", a.OptionsKey(), b.OptionsKey())
	}
	distinct := []Request{
		{ExcludeItems: []int{1}},
		{ExcludeItems: []int{2}},
		{CandidateItems: []int{1}},
		{CandidateItems: []int{}},
		{LongTailOnly: 0.2},
		{LongTailOnly: 0.25},
		{ExcludeItems: []int{1}, LongTailOnly: 0.2},
		{},
	}
	seen := make(map[string]int)
	for i, req := range distinct {
		k := req.OptionsKey()
		if j, dup := seen[k]; dup {
			t.Fatalf("option sets %d and %d share key %q", j, i, k)
		}
		seen[k] = i
	}
}

// TestLongTailCutoff pins the percentile semantics.
func TestLongTailCutoff(t *testing.T) {
	pop := []int{10, 1, 5, 3, 8, 2, 9, 4, 7, 6} // 1..10 shuffled
	cases := []struct {
		pct  float64
		want int
	}{
		{0.1, 1}, {0.2, 2}, {0.5, 5}, {1, 10}, {0.05, 1},
	}
	for _, c := range cases {
		got, _ := longTailCutoff(pop, c.pct, nil)
		if got != c.want {
			t.Fatalf("cutoff(%v) = %d, want %d", c.pct, got, c.want)
		}
	}
	if cut, _ := longTailCutoff(nil, 0.5, nil); cut != 0 {
		t.Fatalf("empty catalog cutoff = %d", cut)
	}
}

// TestRequestCancelledBeforeQuery: an already-cancelled context returns
// promptly with context.Canceled, and the pooled scratch survives — the
// very next query on the same engine succeeds.
func TestRequestCancelledBeforeQuery(t *testing.T) {
	g := figure2Graph(t)
	at := NewAbsorbingTime(g, WalkOptions{Iterations: 15})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := at.RecommendRequest(Request{Ctx: ctx, User: 0, K: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancelled query took %v", elapsed)
	}
	resp, err := at.RecommendRequest(Request{User: 0, K: 4})
	if err != nil || len(resp.Items) == 0 {
		t.Fatalf("post-cancel query: %v %+v", err, resp)
	}
}

// TestRequestMidWalkCancellation: a context cancelled while the τ sweeps
// run aborts the walk between iterations instead of finishing an
// absurdly long solve.
func TestRequestMidWalkCancellation(t *testing.T) {
	g := figure2Graph(t)
	// Enough sweeps that the solve runs for seconds if not cancelled.
	at := NewAbsorbingTime(g, WalkOptions{Iterations: 500_000_000})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := at.RecommendRequest(Request{Ctx: ctx, User: 0, K: 4})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("mid-walk cancellation took %v — the sweep loop is not checking the context", elapsed)
	}
	// The engine (and its pooled scratch) must remain serviceable.
	quick := NewAbsorbingTime(g, WalkOptions{Iterations: 15})
	if _, err := quick.Recommend(0, 4); err != nil {
		t.Fatal(err)
	}
}

// TestRequestDeadlineExceeded: an expired deadline surfaces as
// context.DeadlineExceeded.
func TestRequestDeadlineExceeded(t *testing.T) {
	g := figure2Graph(t)
	at := NewAbsorbingTime(g, WalkOptions{Iterations: 500_000_000})
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	_, err := at.RecommendRequest(Request{Ctx: ctx, User: 0, K: 4})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestBatchRequestPerRequestContext: a batch whose requests carry their
// own contexts honors each one — a cancelled member aborts the batch
// with its context error.
func TestBatchRequestPerRequestContext(t *testing.T) {
	g := figure2Graph(t)
	at := NewAbsorbingTime(g, WalkOptions{Iterations: 15})
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	reqs := []Request{
		{User: 0, K: 3},
		{Ctx: cancelled, User: 1, K: 3},
	}
	if _, err := at.RecommendRequestBatch(reqs, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// All-live batch serves everyone.
	live := []Request{{User: 0, K: 3}, {User: 1, K: 3}}
	resps, err := at.RecommendRequestBatch(live, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, resp := range resps {
		if resp.Algo != "AT" || len(resp.Items) == 0 {
			t.Fatalf("batch entry %d: %+v", i, resp)
		}
	}
}

// TestRequestOptionsUnsupported: an option-carrying request routed to a
// legacy Recommender (no RecommendRequest) fails loudly instead of
// silently ignoring the options; the option-free request still works.
func TestRequestOptionsUnsupported(t *testing.T) {
	legacy := legacyRecommender{}
	if _, err := RecommendRequest(legacy, Request{User: 0, K: 2, LongTailOnly: 0.5}); !errors.Is(err, ErrOptionsUnsupported) {
		t.Fatalf("err = %v, want ErrOptionsUnsupported", err)
	}
	resp, err := RecommendRequest(legacy, Request{User: 0, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Algo != "legacy" || len(resp.Items) != 1 {
		t.Fatalf("resp = %+v", resp)
	}
}

// legacyRecommender implements only the v1 interface.
type legacyRecommender struct{}

func (legacyRecommender) Name() string { return "legacy" }
func (legacyRecommender) ScoreItems(u int) ([]float64, error) {
	return []float64{1, math.Inf(-1)}, nil
}
func (legacyRecommender) Recommend(u, k int) ([]Scored, error) {
	return []Scored{{Item: 0, Score: 1}}, nil
}

// TestConcurrentRequestCancellation races option-carrying and
// context-cancelled requests against live graph writes — the
// race-detector cut for the Request surface (picked up by `make race`).
func TestConcurrentRequestCancellation(t *testing.T) {
	g := figure2Graph(t)
	at := NewAbsorbingTime(g, WalkOptions{Iterations: 50})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for q := 0; ; q++ {
				select {
				case <-stop:
					return
				default:
				}
				u := (w + q) % g.NumUsers()
				req := Request{User: u, K: 4}
				switch q % 3 {
				case 1:
					ctx, cancel := context.WithCancel(context.Background())
					if q%2 == 0 {
						cancel()
					} else {
						defer cancel()
					}
					req.Ctx = ctx
				case 2:
					req.ExcludeItems = []int{0}
					req.LongTailOnly = 0.8
				}
				if _, err := at.RecommendRequest(req); err != nil && !errors.Is(err, context.Canceled) {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 60; w++ {
		u, i := w%g.NumUsers(), w%g.NumItems()
		if _, err := g.UpsertRating(u, i, 1+float64(w%5)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
