package randutil

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCategoricalRespectsWeights(t *testing.T) {
	rng := New(1)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 60000
	for i := 0; i < n; i++ {
		counts[Categorical(rng, w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight category sampled %d times", counts[1])
	}
	frac0 := float64(counts[0]) / n
	if math.Abs(frac0-0.25) > 0.02 {
		t.Fatalf("category 0 frequency %.3f, want ~0.25", frac0)
	}
}

func TestCategoricalSingleton(t *testing.T) {
	rng := New(2)
	for i := 0; i < 10; i++ {
		if got := Categorical(rng, []float64{5}); got != 0 {
			t.Fatalf("singleton categorical returned %d", got)
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	cases := [][]float64{nil, {}, {0, 0}, {-1, 2}}
	for _, w := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Categorical(%v) did not panic", w)
				}
			}()
			Categorical(New(1), w)
		}()
	}
}

func TestSearchCumMatchesCategorical(t *testing.T) {
	rng := New(3)
	w := []float64{0.5, 2, 0, 1.5}
	cum := CumSum(w)
	counts := make([]int, len(w))
	const n = 80000
	for i := 0; i < n; i++ {
		idx := SearchCum(rng, cum)
		if idx < 0 || idx >= len(w) {
			t.Fatalf("SearchCum out of range: %d", idx)
		}
		counts[idx]++
	}
	if counts[2] != 0 {
		t.Fatalf("zero-weight category sampled %d times", counts[2])
	}
	if frac := float64(counts[1]) / n; math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("category 1 frequency %.3f, want ~0.5", frac)
	}
}

func TestDirichletSumsToOne(t *testing.T) {
	rng := New(4)
	for _, alpha := range []float64{0.05, 0.5, 1, 10} {
		for _, k := range []int{1, 2, 10, 50} {
			v := Dirichlet(rng, alpha, k)
			if len(v) != k {
				t.Fatalf("Dirichlet length %d, want %d", len(v), k)
			}
			sum := 0.0
			for _, x := range v {
				if x < 0 {
					t.Fatalf("negative Dirichlet component %v", x)
				}
				sum += x
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("Dirichlet(alpha=%v,k=%d) sums to %v", alpha, k, sum)
			}
		}
	}
}

func TestDirichletConcentration(t *testing.T) {
	// Large alpha concentrates near uniform; small alpha produces spikes.
	rng := New(5)
	const k = 10
	flat := Dirichlet(rng, 1000, k)
	for _, x := range flat {
		if math.Abs(x-1.0/k) > 0.05 {
			t.Fatalf("alpha=1000 component %v far from uniform %v", x, 1.0/k)
		}
	}
	spikyMax := 0.0
	for trial := 0; trial < 20; trial++ {
		v := Dirichlet(rng, 0.02, k)
		for _, x := range v {
			spikyMax = math.Max(spikyMax, x)
		}
	}
	if spikyMax < 0.9 {
		t.Fatalf("alpha=0.02 never produced a spike, max component %v", spikyMax)
	}
}

func TestGammaMeanVariance(t *testing.T) {
	rng := New(6)
	for _, shape := range []float64{0.3, 1, 2.5, 9} {
		const n = 200000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			g := Gamma(rng, shape)
			if g < 0 {
				t.Fatalf("negative gamma draw %v", g)
			}
			sum += g
			sumSq += g * g
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		if math.Abs(mean-shape) > 0.05*shape+0.02 {
			t.Fatalf("Gamma(%v) mean %v, want %v", shape, mean, shape)
		}
		if math.Abs(variance-shape) > 0.1*shape+0.05 {
			t.Fatalf("Gamma(%v) variance %v, want %v", shape, variance, shape)
		}
	}
}

func TestZipfWeightsShape(t *testing.T) {
	w := ZipfWeights(100, 1.0, 0)
	if w[0] != 1 {
		t.Fatalf("rank-0 weight %v, want 1", w[0])
	}
	for i := 1; i < len(w); i++ {
		if w[i] >= w[i-1] {
			t.Fatalf("Zipf weights not strictly decreasing at %d", i)
		}
	}
	if math.Abs(w[9]-0.1) > 1e-12 {
		t.Fatalf("rank-9 weight %v, want 0.1", w[9])
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	rng := New(7)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(50)
		k := rng.Intn(n + 1)
		got := SampleWithoutReplacement(rng, n, k)
		if len(got) != k {
			t.Fatalf("sample size %d, want %d", len(got), k)
		}
		seen := make(map[int]struct{})
		for _, x := range got {
			if x < 0 || x >= n {
				t.Fatalf("sample %d out of range [0,%d)", x, n)
			}
			if _, dup := seen[x]; dup {
				t.Fatalf("duplicate sample %d", x)
			}
			seen[x] = struct{}{}
		}
	}
}

func TestSampleWithoutReplacementUniform(t *testing.T) {
	rng := New(8)
	counts := make([]int, 5)
	const trials = 50000
	for i := 0; i < trials; i++ {
		for _, x := range SampleWithoutReplacement(rng, 5, 2) {
			counts[x]++
		}
	}
	for i, c := range counts {
		frac := float64(c) / float64(trials)
		if math.Abs(frac-0.4) > 0.02 {
			t.Fatalf("element %d picked with frequency %.3f, want ~0.4", i, frac)
		}
	}
}

func TestSampleExcluding(t *testing.T) {
	rng := New(9)
	excl := map[int]struct{}{0: {}, 5: {}, 9: {}}
	for trial := 0; trial < 500; trial++ {
		got := SampleExcluding(rng, 10, 7, excl)
		if len(got) != 7 {
			t.Fatalf("got %d samples, want 7", len(got))
		}
		seen := make(map[int]struct{})
		for _, x := range got {
			if _, bad := excl[x]; bad {
				t.Fatalf("excluded element %d sampled", x)
			}
			if _, dup := seen[x]; dup {
				t.Fatalf("duplicate %d", x)
			}
			seen[x] = struct{}{}
		}
	}
}

func TestSampleExcludingDenseFallback(t *testing.T) {
	rng := New(10)
	excl := make(map[int]struct{})
	for i := 0; i < 90; i++ {
		excl[i] = struct{}{}
	}
	got := SampleExcluding(rng, 100, 10, excl)
	if len(got) != 10 {
		t.Fatalf("got %d samples, want 10", len(got))
	}
	for _, x := range got {
		if x < 90 {
			t.Fatalf("excluded element %d sampled", x)
		}
	}
}

func TestNormalize(t *testing.T) {
	w := []float64{2, 6}
	Normalize(w)
	if w[0] != 0.25 || w[1] != 0.75 {
		t.Fatalf("Normalize gave %v", w)
	}
	z := []float64{0, 0}
	Normalize(z)
	if z[0] != 0 || z[1] != 0 {
		t.Fatalf("Normalize of zero vector changed it: %v", z)
	}
}

func TestDeterminismAcrossSeeds(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		x := Categorical(a, []float64{1, 2, 3})
		y := Categorical(b, []float64{1, 2, 3})
		if x != y {
			t.Fatalf("same seed diverged at draw %d: %d vs %d", i, x, y)
		}
	}
}

func TestQuickCumSumMonotone(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		w := make([]float64, len(raw))
		for i, r := range raw {
			w[i] = float64(r)
		}
		cum := CumSum(w)
		prev := 0.0
		for _, c := range cum {
			if c < prev {
				return false
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDirichletSimplex(t *testing.T) {
	rng := New(11)
	f := func(kRaw uint8, aRaw uint8) bool {
		k := int(kRaw)%20 + 1
		alpha := float64(aRaw)/32 + 0.05
		v := Dirichlet(rng, alpha, k)
		sum := 0.0
		for _, x := range v {
			if x < 0 || x > 1+1e-12 {
				return false
			}
			sum += x
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDirichletVec(t *testing.T) {
	rng := New(17)
	alpha := []float64{0.5, 2, 8}
	v := DirichletVec(rng, alpha)
	if len(v) != 3 {
		t.Fatalf("len %d", len(v))
	}
	total := 0.0
	for _, x := range v {
		if x < 0 || x > 1 {
			t.Fatalf("component %v", x)
		}
		total += x
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("sum %v", total)
	}
	// Mean of component i approaches alpha_i / sum(alpha).
	const draws = 4000
	means := make([]float64, 3)
	for d := 0; d < draws; d++ {
		s := DirichletVec(rng, alpha)
		for i, x := range s {
			means[i] += x / draws
		}
	}
	want := []float64{0.5 / 10.5, 2 / 10.5, 8 / 10.5}
	for i := range want {
		if math.Abs(means[i]-want[i]) > 0.03 {
			t.Fatalf("component %d mean %.3f, want %.3f", i, means[i], want[i])
		}
	}
}

func TestDirichletVecPanicsOnBadAlpha(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on non-positive alpha")
		}
	}()
	DirichletVec(New(1), []float64{1, 0, 2})
}

func TestPermIsPermutation(t *testing.T) {
	rng := New(3)
	p := Perm(rng, 10)
	if len(p) != 10 {
		t.Fatalf("len %d", len(p))
	}
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad permutation %v", p)
		}
		seen[v] = true
	}
}

func TestBernoulliExtremes(t *testing.T) {
	rng := New(5)
	for i := 0; i < 50; i++ {
		if Bernoulli(rng, 0) {
			t.Fatal("p=0 fired")
		}
		if !Bernoulli(rng, 1) {
			t.Fatal("p=1 missed")
		}
	}
	// p=0.3 lands near 0.3 over many draws.
	hits := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		if Bernoulli(rng, 0.3) {
			hits++
		}
	}
	if f := float64(hits) / draws; math.Abs(f-0.3) > 0.02 {
		t.Fatalf("empirical p %.3f", f)
	}
}

func TestSampleExcludingExhaustsExactly(t *testing.T) {
	rng := New(9)
	excl := map[int]struct{}{0: {}, 2: {}}
	got := SampleExcluding(rng, 5, 3, excl)
	want := map[int]bool{1: true, 3: true, 4: true}
	for _, v := range got {
		if !want[v] {
			t.Fatalf("unexpected %d in %v", v, got)
		}
	}
}

func TestSampleExcludingPanicsWhenShort(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic when k exceeds availability")
		}
	}()
	SampleExcluding(New(1), 4, 4, map[int]struct{}{1: {}})
}

func TestSearchCumPanics(t *testing.T) {
	for name, cum := range map[string][]float64{
		"empty": {},
		"zero":  {0, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s cumulative weights accepted", name)
				}
			}()
			SearchCum(New(1), cum)
		}()
	}
}
