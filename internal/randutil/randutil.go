// Package randutil provides seeded random sampling primitives used across
// the long-tail recommendation library: categorical and alias sampling,
// Zipf-like power-law popularity draws, Dirichlet vectors, and reproducible
// shuffles.
//
// Every function takes an explicit *rand.Rand so that experiments are
// deterministic given a seed; nothing in this package touches the global
// rand source.
package randutil

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// New returns a rand.Rand seeded with seed. It is a tiny convenience wrapper
// so callers do not need to import math/rand alongside this package.
func New(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Categorical draws one index from the (not necessarily normalized)
// non-negative weight vector w. It panics if w is empty or sums to zero or
// contains a negative weight, since those are programmer errors on internal
// sampling paths.
func Categorical(rng *rand.Rand, w []float64) int {
	if len(w) == 0 {
		panic("randutil: Categorical on empty weights")
	}
	total := 0.0
	for i, x := range w {
		if x < 0 || math.IsNaN(x) {
			panic(fmt.Sprintf("randutil: Categorical weight[%d] = %v", i, x))
		}
		total += x
	}
	if total <= 0 {
		panic("randutil: Categorical weights sum to zero")
	}
	u := rng.Float64() * total
	acc := 0.0
	for i, x := range w {
		acc += x
		if u < acc {
			return i
		}
	}
	// Floating-point slop: return the last index with positive weight.
	for i := len(w) - 1; i >= 0; i-- {
		if w[i] > 0 {
			return i
		}
	}
	return len(w) - 1
}

// CumSum returns the inclusive prefix-sum of w, for repeated categorical
// sampling via SearchCum.
func CumSum(w []float64) []float64 {
	cum := make([]float64, len(w))
	acc := 0.0
	for i, x := range w {
		acc += x
		cum[i] = acc
	}
	return cum
}

// SearchCum draws one index from the distribution whose inclusive prefix
// sums are cum (as produced by CumSum). It runs in O(log n).
func SearchCum(rng *rand.Rand, cum []float64) int {
	if len(cum) == 0 {
		panic("randutil: SearchCum on empty cumulative weights")
	}
	total := cum[len(cum)-1]
	if total <= 0 {
		panic("randutil: SearchCum total weight is zero")
	}
	u := rng.Float64() * total
	return sort.SearchFloat64s(cum, u+1e-300) // strictly-greater search
}

// Dirichlet draws a sample from a symmetric Dirichlet distribution with
// concentration alpha over k categories.
func Dirichlet(rng *rand.Rand, alpha float64, k int) []float64 {
	if k <= 0 {
		panic("randutil: Dirichlet k must be positive")
	}
	if alpha <= 0 {
		panic("randutil: Dirichlet alpha must be positive")
	}
	out := make([]float64, k)
	total := 0.0
	for i := range out {
		g := Gamma(rng, alpha)
		out[i] = g
		total += g
	}
	if total == 0 {
		// Degenerate draw (tiny alpha): fall back to a single spike.
		out[rng.Intn(k)] = 1
		return out
	}
	for i := range out {
		out[i] /= total
	}
	return out
}

// DirichletVec draws a Dirichlet sample with per-category concentrations.
func DirichletVec(rng *rand.Rand, alpha []float64) []float64 {
	out := make([]float64, len(alpha))
	total := 0.0
	for i, a := range alpha {
		if a <= 0 {
			panic("randutil: DirichletVec alpha must be positive")
		}
		g := Gamma(rng, a)
		out[i] = g
		total += g
	}
	if total == 0 {
		out[rng.Intn(len(alpha))] = 1
		return out
	}
	for i := range out {
		out[i] /= total
	}
	return out
}

// Gamma draws from a Gamma(shape, 1) distribution using the
// Marsaglia–Tsang method, with the standard boost for shape < 1.
func Gamma(rng *rand.Rand, shape float64) float64 {
	if shape <= 0 {
		panic("randutil: Gamma shape must be positive")
	}
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) * U^(1/a)
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return Gamma(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// ZipfWeights returns the unnormalized Zipf-Mandelbrot weights
// w[r] = 1/(r+1+shift)^exponent for ranks r = 0..n-1. These model the
// long-tail popularity curve of Figure 1 in the paper: a few head items
// with large weight and a long tail of niche items.
func ZipfWeights(n int, exponent, shift float64) []float64 {
	if n <= 0 {
		panic("randutil: ZipfWeights n must be positive")
	}
	w := make([]float64, n)
	for r := 0; r < n; r++ {
		w[r] = 1 / math.Pow(float64(r+1)+shift, exponent)
	}
	return w
}

// Perm fills a reproducible permutation of 0..n-1.
func Perm(rng *rand.Rand, n int) []int {
	return rng.Perm(n)
}

// Shuffle shuffles xs in place.
func Shuffle[T any](rng *rand.Rand, xs []T) {
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// SampleWithoutReplacement picks k distinct integers from [0, n) uniformly.
// It uses Floyd's algorithm, O(k) expected time and memory.
func SampleWithoutReplacement(rng *rand.Rand, n, k int) []int {
	if k > n {
		panic(fmt.Sprintf("randutil: sample k=%d > n=%d", k, n))
	}
	if k < 0 {
		panic("randutil: sample k must be non-negative")
	}
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := rng.Intn(j + 1)
		if _, ok := chosen[t]; ok {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	Shuffle(rng, out)
	return out
}

// SampleExcluding picks k distinct integers from [0, n) uniformly,
// excluding every member of excl. It panics if fewer than k candidates
// remain. Intended for the Recall@N protocol's "1000 random unrated items".
func SampleExcluding(rng *rand.Rand, n, k int, excl map[int]struct{}) []int {
	avail := n - len(excl)
	if avail < k {
		panic(fmt.Sprintf("randutil: sample k=%d > available=%d", k, avail))
	}
	out := make([]int, 0, k)
	seen := make(map[int]struct{}, k)
	// Rejection sampling is efficient while the exclusion set is small
	// relative to n; fall back to explicit enumeration otherwise.
	if len(excl)+k < n/2 {
		for len(out) < k {
			c := rng.Intn(n)
			if _, bad := excl[c]; bad {
				continue
			}
			if _, dup := seen[c]; dup {
				continue
			}
			seen[c] = struct{}{}
			out = append(out, c)
		}
		return out
	}
	cands := make([]int, 0, avail)
	for i := 0; i < n; i++ {
		if _, bad := excl[i]; !bad {
			cands = append(cands, i)
		}
	}
	idx := SampleWithoutReplacement(rng, len(cands), k)
	for _, i := range idx {
		out = append(out, cands[i])
	}
	return out
}

// Bernoulli returns true with probability p.
func Bernoulli(rng *rand.Rand, p float64) bool {
	return rng.Float64() < p
}

// Normalize scales w in place so it sums to 1, returning w. A zero vector
// is left unchanged.
func Normalize(w []float64) []float64 {
	total := 0.0
	for _, x := range w {
		total += x
	}
	if total == 0 {
		return w
	}
	for i := range w {
		w[i] /= total
	}
	return w
}
