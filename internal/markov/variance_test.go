package markov

import (
	"math"
	"math/rand"
	"testing"

	"longtailrec/internal/graph"
)

// pathGraph builds the path u0—i0—u1—i1—... as a bipartite graph, giving
// a chain whose absorbing-time moments have closed forms.
func pathGraph(t testing.TB, hops int) *graph.Bipartite {
	t.Helper()
	// users 0..hops rated items so that node sequence alternates.
	var ratings []graph.Rating
	for k := 0; k < hops; k++ {
		ratings = append(ratings, graph.Rating{User: k, Item: k, Weight: 1})
		if k+1 <= hops {
			ratings = append(ratings, graph.Rating{User: k + 1, Item: k, Weight: 1})
		}
	}
	g, err := graph.FromRatings(hops+1, hops, ratings)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestVarianceDeterministicPathIsZero(t *testing.T) {
	// Two nodes joined by one edge: from the transient node the walk is
	// absorbed in exactly one step, so the variance is 0.
	g, err := graph.FromRatings(1, 1, []graph.Rating{{User: 0, Item: 0, Weight: 3}})
	if err != nil {
		t.Fatal(err)
	}
	ch := chainOf(t, g)
	v, err := ch.AbsorbingTimeVariance([]int{g.ItemNode(0)})
	if err != nil {
		t.Fatal(err)
	}
	if v[g.UserNode(0)] != 0 {
		t.Fatalf("deterministic absorption variance %v", v[g.UserNode(0)])
	}
	if v[g.ItemNode(0)] != 0 {
		t.Fatalf("absorbing state variance %v", v[g.ItemNode(0)])
	}
}

func TestVarianceThreeNodePathClosedForm(t *testing.T) {
	// Path a—b—c with absorption at c: starting at b,
	// E[T]=3 and Var[T]=8; starting at a, E[T]=4 and Var[T]=8.
	g := pathGraph(t, 1) // users {0,1}, item {0}: path u0—i0—u1
	ch := chainOf(t, g)
	absorb := []int{g.UserNode(1)}
	tau, err := ch.AbsorbingTimeExact(absorb)
	if err != nil {
		t.Fatal(err)
	}
	v, err := ch.AbsorbingTimeVariance(absorb)
	if err != nil {
		t.Fatal(err)
	}
	mid, end := g.ItemNode(0), g.UserNode(0)
	if math.Abs(tau[mid]-3) > 1e-9 || math.Abs(tau[end]-4) > 1e-9 {
		t.Fatalf("expected times %v / %v, want 3 / 4", tau[mid], tau[end])
	}
	if math.Abs(v[mid]-8) > 1e-9 {
		t.Fatalf("variance at middle %v, want 8", v[mid])
	}
	if math.Abs(v[end]-8) > 1e-9 {
		t.Fatalf("variance at end %v, want 8", v[end])
	}
}

func TestVarianceMatchesMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g, ch := randomChain(rng, 5, 6)
	absorb := []int{g.ItemNode(0), g.ItemNode(1)}
	v, err := ch.AbsorbingTimeVariance(absorb)
	if err != nil {
		t.Fatal(err)
	}
	tau, err := ch.AbsorbingTimeExact(absorb)
	if err != nil {
		t.Fatal(err)
	}
	start := g.UserNode(3)
	if math.IsInf(tau[start], 1) {
		t.Skip("start disconnected from absorbing set")
	}
	// Simulate walks and compare the empirical variance.
	const walks = 60000
	absorbSet := map[int]bool{absorb[0]: true, absorb[1]: true}
	var sum, sumSq float64
	for w := 0; w < walks; w++ {
		node, steps := start, 0
		for !absorbSet[node] {
			node = stepFrom(rng, ch, node)
			steps++
			if steps > 1_000_000 {
				t.Fatal("walk did not absorb")
			}
		}
		fs := float64(steps)
		sum += fs
		sumSq += fs * fs
	}
	mean := sum / walks
	varMC := sumSq/walks - mean*mean
	if math.Abs(mean-tau[start]) > 0.12*tau[start] {
		t.Fatalf("Monte Carlo mean %v vs exact %v", mean, tau[start])
	}
	if math.Abs(varMC-v[start]) > 0.15*v[start]+1 {
		t.Fatalf("Monte Carlo variance %v vs exact %v", varMC, v[start])
	}
}

// stepFrom samples one transition of the chain.
func stepFrom(rng *rand.Rand, ch *Chain, i int) int {
	u := rng.Float64()
	acc := 0.0
	last := i
	for j := 0; j < ch.Len(); j++ {
		p := ch.TransitionProb(i, j)
		if p == 0 {
			continue
		}
		acc += p
		last = j
		if u < acc {
			return j
		}
	}
	return last
}

func TestVarianceNonNegativeEverywhere(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		g, ch := randomChain(rng, 4+trial%3, 5+trial%4)
		absorb := []int{g.ItemNode(trial % g.NumItems())}
		v, err := ch.AbsorbingTimeVariance(absorb)
		if err != nil {
			t.Fatal(err)
		}
		for node, x := range v {
			if x < 0 || math.IsNaN(x) {
				t.Fatalf("trial %d node %d variance %v", trial, node, x)
			}
		}
	}
}

func TestVarianceUnreachableIsInf(t *testing.T) {
	// Two disconnected components: absorbing in one, query the other.
	ratings := []graph.Rating{
		{User: 0, Item: 0, Weight: 1},
		{User: 1, Item: 1, Weight: 1},
	}
	g, err := graph.FromRatings(2, 2, ratings)
	if err != nil {
		t.Fatal(err)
	}
	ch := chainOf(t, g)
	v, err := ch.AbsorbingTimeVariance([]int{g.ItemNode(0)})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(v[g.UserNode(1)], 1) {
		t.Fatalf("unreachable node variance %v, want +Inf", v[g.UserNode(1)])
	}
	if v[g.UserNode(0)] != 0 {
		t.Fatalf("deterministic neighbor variance %v", v[g.UserNode(0)])
	}
}

func TestStdDevIsSqrtOfVariance(t *testing.T) {
	g := pathGraph(t, 1)
	ch := chainOf(t, g)
	absorb := []int{g.UserNode(1)}
	v, err := ch.AbsorbingTimeVariance(absorb)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := ch.AbsorbingTimeStdDev(absorb)
	if err != nil {
		t.Fatal(err)
	}
	for i := range v {
		want := math.Sqrt(v[i])
		if sd[i] != want && !(math.IsInf(sd[i], 1) && math.IsInf(want, 1)) {
			t.Fatalf("node %d: sd %v, sqrt(var) %v", i, sd[i], want)
		}
	}
}

func TestVarianceValidation(t *testing.T) {
	g := pathGraph(t, 1)
	ch := chainOf(t, g)
	if _, err := ch.AbsorbingTimeVariance(nil); err == nil {
		t.Fatal("empty absorbing set accepted")
	}
	if _, err := ch.AbsorbingTimeVariance([]int{-1}); err == nil {
		t.Fatal("out-of-range absorbing node accepted")
	}
}
