package markov

import (
	"math"
	"math/rand"
	"testing"

	"longtailrec/internal/graph"
)

func TestAbsorptionProbabilitySumsToOne(t *testing.T) {
	// Probabilities over all absorbing targets must sum to 1 for every
	// state that can reach the absorbing set.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 8; trial++ {
		g, ch := randomChain(rng, 3+rng.Intn(5), 3+rng.Intn(5))
		absorbing := []int{g.ItemNode(0), g.ItemNode(g.NumItems() - 1)}
		if absorbing[0] == absorbing[1] {
			continue
		}
		total := make([]float64, ch.Len())
		for _, target := range absorbing {
			b, err := ch.AbsorptionProbability(absorbing, target)
			if err != nil {
				t.Fatal(err)
			}
			for i, p := range b {
				if p < -1e-12 || p > 1+1e-12 {
					t.Fatalf("trial %d: probability %v at %d", trial, p, i)
				}
				total[i] += p
			}
		}
		// Determine reachability via absorbing time.
		at, err := ch.AbsorbingTimeExact(absorbing)
		if err != nil {
			t.Fatal(err)
		}
		for i, tt := range total {
			if math.IsInf(at[i], 1) {
				if tt > 1e-9 {
					t.Fatalf("trial %d: unreachable state %d has absorption mass %v", trial, i, tt)
				}
				continue
			}
			if math.Abs(tt-1) > 1e-8 {
				t.Fatalf("trial %d: state %d absorption mass %v", trial, i, tt)
			}
		}
	}
}

func TestAbsorptionProbabilitySingleTarget(t *testing.T) {
	// With a single absorbing state, every reachable state is absorbed
	// there with probability 1.
	g := figure2Graph(t)
	ch := chainOf(t, g)
	q := g.UserNode(4)
	b, err := ch.AbsorptionProbability([]int{q}, q)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range b {
		if math.Abs(p-1) > 1e-9 {
			t.Fatalf("state %d absorbed with probability %v", i, p)
		}
	}
}

func TestAbsorptionProbabilityFirstStep(t *testing.T) {
	// The solution must satisfy b_i = Σ_j p_ij·b_j with b fixed at the
	// absorbing states (1 at target, 0 elsewhere).
	g := figure2Graph(t)
	ch := chainOf(t, g)
	absorbing := []int{g.ItemNode(1), g.ItemNode(2)}
	target := absorbing[0]
	b, err := ch.AbsorptionProbability(absorbing, target)
	if err != nil {
		t.Fatal(err)
	}
	if b[target] != 1 || b[absorbing[1]] != 0 {
		t.Fatalf("boundary values wrong: %v %v", b[target], b[absorbing[1]])
	}
	for i := 0; i < ch.Len(); i++ {
		if i == target || i == absorbing[1] {
			continue
		}
		want := 0.0
		for j := 0; j < ch.Len(); j++ {
			want += ch.TransitionProb(i, j) * b[j]
		}
		if math.Abs(b[i]-want) > 1e-8 {
			t.Fatalf("first-step equation violated at %d: %v vs %v", i, b[i], want)
		}
	}
}

func TestAbsorptionProbabilityCloserTargetWins(t *testing.T) {
	// A path graph u0 - i0 - u1 - i1: from u0, absorption at i0 is certain
	// before i1 can be reached... both are absorbing, so walks from u0
	// must end at i0 with probability 1 (i0 blocks the only route to i1).
	b := graph.NewBuilder(2, 2)
	_ = b.AddRating(0, 0, 1)
	_ = b.AddRating(1, 0, 1)
	_ = b.AddRating(1, 1, 1)
	g := b.Build()
	ch := chainOf(t, g)
	absorbing := []int{g.ItemNode(0), g.ItemNode(1)}
	p0, err := ch.AbsorptionProbability(absorbing, g.ItemNode(0))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p0[g.UserNode(0)]-1) > 1e-9 {
		t.Fatalf("u0 absorbed at blocking item with probability %v", p0[g.UserNode(0)])
	}
	// u1 sits between both: absorbed at i0 with probability 1/2.
	if math.Abs(p0[g.UserNode(1)]-0.5) > 1e-9 {
		t.Fatalf("u1 absorbed at i0 with probability %v, want 0.5", p0[g.UserNode(1)])
	}
}

func TestAbsorptionProbabilityValidation(t *testing.T) {
	g := figure2Graph(t)
	ch := chainOf(t, g)
	if _, err := ch.AbsorptionProbability(nil, 0); err == nil {
		t.Fatal("empty absorbing set accepted")
	}
	if _, err := ch.AbsorptionProbability([]int{0}, 1); err == nil {
		t.Fatal("non-member target accepted")
	}
	if _, err := ch.AbsorptionProbability([]int{0}, -1); err == nil {
		t.Fatal("negative target accepted")
	}
}
