package markov

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"longtailrec/internal/graph"
)

// figure2Graph reproduces the exact rating table of Figure 2 in the paper.
func figure2Graph(t testing.TB) *graph.Bipartite {
	t.Helper()
	ratings := []graph.Rating{
		{User: 0, Item: 0, Weight: 5}, {User: 0, Item: 1, Weight: 3}, {User: 0, Item: 4, Weight: 3}, {User: 0, Item: 5, Weight: 5},
		{User: 1, Item: 0, Weight: 5}, {User: 1, Item: 1, Weight: 4}, {User: 1, Item: 2, Weight: 5}, {User: 1, Item: 4, Weight: 4}, {User: 1, Item: 5, Weight: 5},
		{User: 2, Item: 0, Weight: 4}, {User: 2, Item: 1, Weight: 5}, {User: 2, Item: 2, Weight: 4},
		{User: 3, Item: 2, Weight: 5}, {User: 3, Item: 3, Weight: 5},
		{User: 4, Item: 1, Weight: 4}, {User: 4, Item: 2, Weight: 5},
	}
	g, err := graph.FromRatings(5, 6, ratings)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func chainOf(t testing.TB, g *graph.Bipartite) *Chain {
	t.Helper()
	ch, err := NewChain(g.Adjacency())
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func randomChain(r *rand.Rand, nu, ni int) (*graph.Bipartite, *Chain) {
	b := graph.NewBuilder(nu, ni)
	for u := 0; u < nu; u++ {
		k := 1 + r.Intn(ni)
		for _, i := range r.Perm(ni)[:k] {
			_ = b.AddRating(u, i, float64(1+r.Intn(5)))
		}
	}
	g := b.Build()
	ch, err := NewChain(g.Adjacency())
	if err != nil {
		panic(err)
	}
	return g, ch
}

// TestFigure2WorkedExample validates the paper's §3.3 worked example.
// Paper values: H(U5|M4)=17.7, H(U5|M1)=19.6, H(U5|M5)=20.2, H(U5|M6)=20.3.
// Our exact solve on the Figure 2 rating table gives the identical ranking
// with every value exactly 1.040× the paper's (a uniform edge-mass
// difference); we assert the ranking plus the constant-ratio agreement.
func TestFigure2WorkedExample(t *testing.T) {
	g := figure2Graph(t)
	ch := chainOf(t, g)
	ht, err := ch.HittingTimeExact(g.UserNode(4))
	if err != nil {
		t.Fatal(err)
	}
	m1 := ht[g.ItemNode(0)]
	m4 := ht[g.ItemNode(3)]
	m5 := ht[g.ItemNode(4)]
	m6 := ht[g.ItemNode(5)]
	if !(m4 < m1 && m1 < m5 && m5 < m6) {
		t.Fatalf("ranking M4<M1<M5<M6 violated: %v %v %v %v", m4, m1, m5, m6)
	}
	// Regression pin for our exact solver.
	wantExact := map[string]float64{"m1": 20.3894, "m4": 18.3993, "m5": 21.0235, "m6": 21.1171}
	for name, got := range map[string]float64{"m1": m1, "m4": m4, "m5": m5, "m6": m6} {
		if math.Abs(got-wantExact[name]) > 5e-4 {
			t.Fatalf("%s = %v, want %v", name, got, wantExact[name])
		}
	}
	// Constant-ratio agreement with the paper's printed values.
	paper := []float64{17.7, 19.6, 20.2, 20.3}
	ours := []float64{m4, m1, m5, m6}
	base := ours[0] / paper[0]
	for k := 1; k < 4; k++ {
		ratio := ours[k] / paper[k]
		if math.Abs(ratio-base)/base > 0.01 {
			t.Fatalf("ratio to paper value drifts: %v vs %v", ratio, base)
		}
	}
}

func TestFigure2NicheBeatsPopular(t *testing.T) {
	// The paper's point: HT recommends the niche M4 over the locally
	// popular M1 for U5, while a popularity ranking would pick M1.
	g := figure2Graph(t)
	ch := chainOf(t, g)
	ht, err := ch.HittingTimeExact(g.UserNode(4))
	if err != nil {
		t.Fatal(err)
	}
	pop := g.ItemPopularity()
	if pop[0] <= pop[3] {
		t.Fatal("test premise broken: M1 should be more popular than M4")
	}
	if ht[g.ItemNode(3)] >= ht[g.ItemNode(0)] {
		t.Fatal("hitting time failed to prefer the niche item M4")
	}
}

func TestNewChainRejectsNonSquare(t *testing.T) {
	g := figure2Graph(t)
	sub := g.Adjacency().SubmatrixRows([]int{0, 1})
	if _, err := NewChain(sub); err == nil {
		t.Fatal("non-square adjacency accepted")
	}
}

func TestTransitionProbRows(t *testing.T) {
	g := figure2Graph(t)
	ch := chainOf(t, g)
	for i := 0; i < ch.Len(); i++ {
		sum := 0.0
		for j := 0; j < ch.Len(); j++ {
			p := ch.TransitionProb(i, j)
			if p < 0 || p > 1 {
				t.Fatalf("p(%d,%d) = %v out of [0,1]", i, j, p)
			}
			sum += p
		}
		if ch.Degree(i) > 0 && math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestStationaryMatchesPowerIteration(t *testing.T) {
	g := figure2Graph(t)
	ch := chainOf(t, g)
	closed := ch.Stationary()
	power := ch.LazyStationaryPower(20000, 1e-14)
	for i := range closed {
		if math.Abs(closed[i]-power[i]) > 1e-8 {
			t.Fatalf("π[%d]: closed %v vs power %v", i, closed[i], power[i])
		}
	}
}

func TestStepDistributionPreservesMass(t *testing.T) {
	g := figure2Graph(t)
	ch := chainOf(t, g)
	in := make([]float64, ch.Len())
	in[3] = 0.5
	in[7] = 0.5
	out := make([]float64, ch.Len())
	ch.StepDistribution(in, out)
	sum := 0.0
	for _, p := range out {
		if p < 0 {
			t.Fatalf("negative probability %v", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("mass after step = %v", sum)
	}
}

func TestAbsorbingTimeEqualsHittingTimeForSingleton(t *testing.T) {
	// Definition 3: AT(S|i) with S={j} is exactly H(j|i).
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		g, ch := randomChain(rng, 3+rng.Intn(5), 3+rng.Intn(5))
		target := g.UserNode(rng.Intn(g.NumUsers()))
		at, err := ch.AbsorbingTimeExact([]int{target})
		if err != nil {
			t.Fatal(err)
		}
		ht, err := ch.HittingTimeExact(target)
		if err != nil {
			t.Fatal(err)
		}
		for i := range at {
			if at[i] != ht[i] && !(math.IsInf(at[i], 1) && math.IsInf(ht[i], 1)) {
				t.Fatalf("trial %d: AT %v != HT %v at state %d", trial, at[i], ht[i], i)
			}
		}
	}
}

func TestAbsorbingStatesAreZero(t *testing.T) {
	g := figure2Graph(t)
	ch := chainOf(t, g)
	abs := []int{g.ItemNode(1), g.ItemNode(2)}
	at, err := ch.AbsorbingTimeExact(abs)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range abs {
		if at[s] != 0 {
			t.Fatalf("absorbing state %d has AT %v", s, at[s])
		}
	}
	for i, v := range at {
		if i != abs[0] && i != abs[1] && v <= 0 {
			t.Fatalf("transient state %d has non-positive AT %v", i, v)
		}
	}
}

func TestAbsorbingTimeFirstStepEquation(t *testing.T) {
	// Exact AT must satisfy Eq. 6: AT(i) = 1 + Σ_j p_ij AT(j).
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		g, ch := randomChain(rng, 3+rng.Intn(6), 3+rng.Intn(6))
		abs := []int{g.ItemNode(rng.Intn(g.NumItems()))}
		at, err := ch.AbsorbingTimeExact(abs)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < ch.Len(); i++ {
			if i == abs[0] || math.IsInf(at[i], 1) {
				continue
			}
			want := 1.0
			for j := 0; j < ch.Len(); j++ {
				p := ch.TransitionProb(i, j)
				if p > 0 && !math.IsInf(at[j], 1) {
					want += p * at[j]
				}
			}
			if math.Abs(at[i]-want) > 1e-8 {
				t.Fatalf("trial %d: Eq.6 violated at %d: %v vs %v", trial, i, at[i], want)
			}
		}
	}
}

func TestUnreachableStatesAreInfinite(t *testing.T) {
	// Two disconnected components: absorbing in one, the other must be +Inf.
	b := graph.NewBuilder(2, 2)
	_ = b.AddRating(0, 0, 5)
	_ = b.AddRating(1, 1, 5)
	g := b.Build()
	ch := chainOf(t, g)
	at, err := ch.AbsorbingTimeExact([]int{g.ItemNode(0)})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(at[g.UserNode(1)], 1) || !math.IsInf(at[g.ItemNode(1)], 1) {
		t.Fatalf("disconnected states not infinite: %v", at)
	}
	if math.IsInf(at[g.UserNode(0)], 1) {
		t.Fatal("reachable state is infinite")
	}
}

func TestTruncatedConvergesToExact(t *testing.T) {
	g := figure2Graph(t)
	ch := chainOf(t, g)
	abs := []int{g.ItemNode(1), g.ItemNode(2)}
	exact, err := ch.AbsorbingTimeExact(abs)
	if err != nil {
		t.Fatal(err)
	}
	trunc, err := ch.AbsorbingTimeTruncated(abs, 5000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		if math.Abs(exact[i]-trunc[i]) > 1e-6 {
			t.Fatalf("state %d: exact %v vs truncated %v", i, exact[i], trunc[i])
		}
	}
}

func TestTruncatedMonotoneAndBounded(t *testing.T) {
	g := figure2Graph(t)
	ch := chainOf(t, g)
	abs := []int{g.UserNode(4)}
	exact, err := ch.AbsorbingTimeExact(abs)
	if err != nil {
		t.Fatal(err)
	}
	prev := make([]float64, ch.Len())
	for tau := 1; tau <= 60; tau++ {
		cur, err := ch.AbsorbingTimeTruncated(abs, tau)
		if err != nil {
			t.Fatal(err)
		}
		for i := range cur {
			if cur[i]+1e-12 < prev[i] {
				t.Fatalf("tau=%d: truncated AT decreased at state %d", tau, i)
			}
			if !math.IsInf(exact[i], 1) && cur[i] > exact[i]+1e-9 {
				t.Fatalf("tau=%d: truncated AT %v exceeds exact %v at %d", tau, cur[i], exact[i], i)
			}
		}
		copy(prev, cur)
	}
}

func TestTruncatedRankingStableByTau15(t *testing.T) {
	// The paper claims τ=15 already yields the same top-k ranking as the
	// exact solution on small graphs.
	g := figure2Graph(t)
	ch := chainOf(t, g)
	abs := []int{g.ItemNode(1), g.ItemNode(2)} // S_{U5}
	exact, err := ch.AbsorbingTimeExact(abs)
	if err != nil {
		t.Fatal(err)
	}
	trunc, err := ch.AbsorbingTimeTruncated(abs, 15)
	if err != nil {
		t.Fatal(err)
	}
	// Compare the pairwise order of the candidate items (not in S).
	cands := []int{g.ItemNode(0), g.ItemNode(3), g.ItemNode(4), g.ItemNode(5)}
	for a := 0; a < len(cands); a++ {
		for b := a + 1; b < len(cands); b++ {
			i, j := cands[a], cands[b]
			if (exact[i] < exact[j]) != (trunc[i] < trunc[j]) {
				t.Fatalf("τ=15 ranking disagrees with exact on (%d,%d)", i, j)
			}
		}
	}
}

func TestGaussSeidelMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		g, ch := randomChain(rng, 4+rng.Intn(6), 4+rng.Intn(6))
		abs := []int{g.ItemNode(rng.Intn(g.NumItems()))}
		dense, err := ch.AbsorbingTimeExact(abs)
		if err != nil {
			t.Fatal(err)
		}
		var gs []float64
		forceGaussSeidel(func() {
			gs, err = ch.AbsorbingTimeExact(abs)
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range dense {
			if math.IsInf(dense[i], 1) {
				if !math.IsInf(gs[i], 1) {
					t.Fatalf("GS finite where dense infinite at %d", i)
				}
				continue
			}
			if math.Abs(dense[i]-gs[i]) > 1e-6 {
				t.Fatalf("trial %d state %d: dense %v vs GS %v", trial, i, dense[i], gs[i])
			}
		}
	}
}

func TestAbsorbingCostReducesToTime(t *testing.T) {
	// With unit step costs, AC must equal AT (Eq. 8 note).
	g := figure2Graph(t)
	ch := chainOf(t, g)
	abs := []int{g.UserNode(0)}
	ones := make([]float64, ch.Len())
	for i := range ones {
		ones[i] = 1
	}
	at, err := ch.AbsorbingTimeExact(abs)
	if err != nil {
		t.Fatal(err)
	}
	ac, err := ch.AbsorbingCostExact(abs, ones)
	if err != nil {
		t.Fatal(err)
	}
	for i := range at {
		if at[i] != ac[i] {
			t.Fatalf("AC != AT at %d: %v vs %v", i, ac[i], at[i])
		}
	}
}

func TestAbsorbingCostScalesLinearly(t *testing.T) {
	// Doubling every step cost must double the absorbing cost.
	g := figure2Graph(t)
	ch := chainOf(t, g)
	abs := []int{g.ItemNode(0)}
	cost1 := make([]float64, ch.Len())
	cost2 := make([]float64, ch.Len())
	for i := range cost1 {
		cost1[i] = 0.5 + float64(i%3)
		cost2[i] = 2 * cost1[i]
	}
	ac1, err := ch.AbsorbingCostExact(abs, cost1)
	if err != nil {
		t.Fatal(err)
	}
	ac2, err := ch.AbsorbingCostExact(abs, cost2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ac1 {
		if math.IsInf(ac1[i], 1) {
			continue
		}
		if math.Abs(ac2[i]-2*ac1[i]) > 1e-8 {
			t.Fatalf("linearity violated at %d: %v vs 2*%v", i, ac2[i], ac1[i])
		}
	}
}

func TestStepCosts(t *testing.T) {
	g := figure2Graph(t)
	ch := chainOf(t, g)
	enter := make([]float64, ch.Len())
	for i := range enter {
		enter[i] = float64(i + 1)
	}
	sc := ch.StepCosts(enter)
	for i := 0; i < ch.Len(); i++ {
		want := 0.0
		for j := 0; j < ch.Len(); j++ {
			want += ch.TransitionProb(i, j) * enter[j]
		}
		if math.Abs(sc[i]-want) > 1e-12 {
			t.Fatalf("StepCosts[%d] = %v, want %v", i, sc[i], want)
		}
	}
}

func TestStepCostsUniformEnterIsUnit(t *testing.T) {
	g := figure2Graph(t)
	ch := chainOf(t, g)
	enter := make([]float64, ch.Len())
	for i := range enter {
		enter[i] = 1
	}
	for i, sc := range ch.StepCosts(enter) {
		if ch.Degree(i) > 0 && math.Abs(sc-1) > 1e-12 {
			t.Fatalf("uniform enter cost gave step cost %v at %d", sc, i)
		}
	}
}

func TestKemenyConstant(t *testing.T) {
	// Random-target lemma: Σ_j π_j·H(j|i) is the same for every start i.
	// This is a strong end-to-end check of the exact hitting-time solver.
	g := figure2Graph(t)
	ch := chainOf(t, g)
	pi := ch.Stationary()
	n := ch.Len()
	// H[j][i] = hitting time to j from i.
	kemeny := make([]float64, n)
	for j := 0; j < n; j++ {
		ht, err := ch.HittingTimeExact(j)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			kemeny[i] += pi[j] * ht[i]
		}
	}
	for i := 1; i < n; i++ {
		if math.Abs(kemeny[i]-kemeny[0]) > 1e-6 {
			t.Fatalf("Kemeny constant varies: K(%d)=%v vs K(0)=%v", i, kemeny[i], kemeny[0])
		}
	}
}

func TestCommuteTimeSymmetry(t *testing.T) {
	// C(i,j) = H(i|j) + H(j|i) must be symmetric on a reversible chain.
	rng := rand.New(rand.NewSource(4))
	g, ch := randomChain(rng, 4, 5)
	n := ch.Len()
	H := make([][]float64, n)
	for j := 0; j < n; j++ {
		ht, err := ch.HittingTimeExact(j)
		if err != nil {
			t.Fatal(err)
		}
		H[j] = ht
	}
	_ = g
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			cij := H[j][i] + H[i][j]
			cji := H[i][j] + H[j][i]
			if math.IsInf(cij, 1) {
				continue
			}
			if math.Abs(cij-cji) > 1e-9 {
				t.Fatalf("commute time asymmetric (%d,%d)", i, j)
			}
		}
	}
}

func TestErrorPaths(t *testing.T) {
	g := figure2Graph(t)
	ch := chainOf(t, g)
	if _, err := ch.AbsorbingTimeExact(nil); !errors.Is(err, ErrNoAbsorbing) {
		t.Fatalf("empty absorbing set: %v", err)
	}
	if _, err := ch.AbsorbingTimeExact([]int{-1}); err == nil {
		t.Fatal("negative absorbing state accepted")
	}
	if _, err := ch.AbsorbingTimeExact([]int{99}); err == nil {
		t.Fatal("out-of-range absorbing state accepted")
	}
	if _, err := ch.AbsorbingTimeTruncated([]int{0}, -1); err == nil {
		t.Fatal("negative tau accepted")
	}
	if _, err := ch.AbsorbingCostExact([]int{0}, []float64{1}); err == nil {
		t.Fatal("short stepCost accepted")
	}
	if _, err := ch.AbsorbingCostTruncated([]int{0}, []float64{1}, 5); err == nil {
		t.Fatal("short stepCost accepted (truncated)")
	}
}

func TestQuickTruncatedNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, ch := randomChain(r, 2+r.Intn(6), 2+r.Intn(6))
		abs := []int{g.ItemNode(r.Intn(g.NumItems()))}
		tau := r.Intn(30)
		at, err := ch.AbsorbingTimeTruncated(abs, tau)
		if err != nil {
			return false
		}
		for _, v := range at {
			if v < 0 || math.IsNaN(v) {
				return false
			}
		}
		return at[abs[0]] == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickExactAtLeastOne(t *testing.T) {
	// Any transient state adjacent to anything needs at least one step.
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, ch := randomChain(r, 2+r.Intn(6), 2+r.Intn(6))
		abs := []int{g.UserNode(r.Intn(g.NumUsers()))}
		at, err := ch.AbsorbingTimeExact(abs)
		if err != nil {
			return false
		}
		for i, v := range at {
			if i == abs[0] {
				continue
			}
			if !math.IsInf(v, 1) && v < 1-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
