package markov

// forceGaussSeidel lowers the dense-solver cutoff so tests can exercise the
// Gauss–Seidel path on small systems, restoring it afterwards.
func forceGaussSeidel(fn func()) {
	old := maxDenseSolveVar
	maxDenseSolveVar = 0
	defer func() { maxDenseSolveVar = old }()
	fn()
}
