// Second-moment statistics of the absorbing walk. The paper ranks by the
// expectation AT(S|i); the variance quantifies how reliable that ranking
// signal is per node — two items with equal expected absorbing time can
// have very different spreads, and high-variance times come from loosely
// connected tail regions.

package markov

import (
	"fmt"
	"math"
)

// AbsorbingTimeVariance returns Var[T_S | s(0)=i] for every state, where
// T_S is the first-passage time into the absorbing set.
//
// With fundamental matrix N = (I−Q)^{-1} and first moment τ = N·1, the
// second moment is E[T²] = (2N−I)·τ, so Var = 2·(N·τ) − τ − τ². Both N·1
// and N·τ are single linear solves, reusing the exact absorbing-cost
// solver. Absorbing states get 0; states that cannot reach S get +Inf.
func (c *Chain) AbsorbingTimeVariance(absorbing []int) ([]float64, error) {
	tau, err := c.AbsorbingTimeExact(absorbing)
	if err != nil {
		return nil, err
	}
	// Solve (I−Q)·x = τ on the transient states. Unreachable states carry
	// τ = +Inf, which must not poison the right-hand side of reachable
	// rows; they cannot be adjacent to reachable transient states (a
	// reachable neighbor would make them reachable), so zeroing is safe.
	rhs := make([]float64, c.n)
	for i, t := range tau {
		if math.IsInf(t, 1) {
			rhs[i] = 0
			continue
		}
		rhs[i] = t
	}
	ntau, err := c.AbsorbingCostExact(absorbing, rhs)
	if err != nil {
		return nil, fmt.Errorf("markov: variance second solve: %w", err)
	}
	out := make([]float64, c.n)
	for i := range out {
		switch {
		case math.IsInf(tau[i], 1):
			out[i] = math.Inf(1)
		default:
			v := 2*ntau[i] - tau[i] - tau[i]*tau[i]
			if v < 0 {
				v = 0 // numerical slop on nearly deterministic paths
			}
			out[i] = v
		}
	}
	return out, nil
}

// AbsorbingTimeStdDev returns the per-state standard deviation of the
// first-passage time — Var^(1/2), in the same step units as the time.
func (c *Chain) AbsorbingTimeStdDev(absorbing []int) ([]float64, error) {
	v, err := c.AbsorbingTimeVariance(absorbing)
	if err != nil {
		return nil, err
	}
	for i := range v {
		v[i] = math.Sqrt(v[i])
	}
	return v, nil
}
