// Property test for the fused production kernel: on random chains,
// AbsorbingCostFused must match the unfused two-pass pipeline
// (StepCosts followed by AbsorbingCostTruncated) within 1e-9, and the
// nil-enter (unit cost) mode must match AbsorbingTimeTruncated. Each trial
// is generated from its own logged seed so failures reproduce exactly.

package markov

import (
	"math"
	"math/rand"
	"testing"

	"longtailrec/internal/sparse"
)

// randomChainCase builds a random symmetric weighted graph (possibly with
// isolated states), a random non-empty absorbing set, random entry costs
// and a random sweep count, all from one seeded source.
func randomChainCase(rng *rand.Rand) (chain *Chain, absorbing []int, enter []float64, tau int) {
	n := 2 + rng.Intn(38)
	coo := sparse.NewCOO(n, n)
	type edge struct{ a, b int }
	seen := map[edge]bool{}
	edges := rng.Intn(3 * n)
	for e := 0; e < edges; e++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b || seen[edge{a, b}] {
			continue
		}
		seen[edge{a, b}], seen[edge{b, a}] = true, true
		w := 0.1 + rng.Float64()*4.9
		coo.Add(a, b, w)
		coo.Add(b, a, w)
	}
	c, err := NewChain(coo.ToCSR())
	if err != nil {
		panic(err)
	}
	numAbs := 1 + rng.Intn(n/2+1)
	perm := rng.Perm(n)
	absorbing = append(absorbing, perm[:numAbs]...)
	enter = make([]float64, n)
	for i := range enter {
		enter[i] = rng.Float64() * 3
	}
	tau = 1 + rng.Intn(25)
	return c, absorbing, enter, tau
}

// TestAbsorbingCostFusedMatchesTwoPass is the satellite property test: 200
// random chains, fused vs unfused within 1e-9, seeds logged on failure.
func TestAbsorbingCostFusedMatchesTwoPass(t *testing.T) {
	const trials = 200
	const tol = 1e-9
	var scr ChainScratch
	for trial := 0; trial < trials; trial++ {
		seed := int64(0xfeed + trial)
		rng := rand.New(rand.NewSource(seed))
		chain, absorbing, enter, tau := randomChainCase(rng)

		// Reference: the allocating two-pass pipeline (StepCosts, then the
		// unfused truncated DP).
		step := chain.StepCosts(enter)
		want, err := chain.AbsorbingCostTruncated(absorbing, step, tau)
		if err != nil {
			t.Fatalf("seed %#x: reference: %v", seed, err)
		}

		scr.Resize(chain.Len())
		for _, s := range absorbing {
			scr.Mask[s] = true
		}
		got, err := chain.AbsorbingCostFused(&scr, enter, tau)
		if err != nil {
			t.Fatalf("seed %#x: fused: %v", seed, err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > tol {
				t.Fatalf("seed %#x (n=%d, tau=%d, |S|=%d): state %d fused %v vs two-pass %v (Δ %.3g > %g)",
					seed, chain.Len(), tau, len(absorbing), i, got[i], want[i], math.Abs(got[i]-want[i]), tol)
			}
		}

		// Unit-cost mode (enter == nil) against AbsorbingTimeTruncated.
		wantTime, err := chain.AbsorbingTimeTruncated(absorbing, tau)
		if err != nil {
			t.Fatalf("seed %#x: time reference: %v", seed, err)
		}
		scr.Resize(chain.Len())
		for _, s := range absorbing {
			scr.Mask[s] = true
		}
		gotTime, err := chain.AbsorbingCostFused(&scr, nil, tau)
		if err != nil {
			t.Fatalf("seed %#x: fused unit: %v", seed, err)
		}
		for i := range wantTime {
			if math.Abs(gotTime[i]-wantTime[i]) > tol {
				t.Fatalf("seed %#x: unit-cost state %d fused %v vs reference %v", seed, i, gotTime[i], wantTime[i])
			}
		}
	}
}
