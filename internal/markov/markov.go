// Package markov implements the random-walk machinery of Sections 3 and 4
// of the paper: transition probabilities on a weighted graph (Eq. 1),
// stationary distributions (Eq. 2), hitting times (Definition 1, Eq. 5),
// absorbing times (Definition 3, Eq. 6) and entropy-weighted absorbing
// costs (Eq. 8/9).
//
// Each quantity comes in two flavors:
//
//   - Exact: solve the first-step-analysis linear system
//     (I - P_TT)·x = rhs over the transient states. Small systems use dense
//     Gaussian elimination; larger ones use Gauss–Seidel, which converges
//     for absorbing chains because P_TT is strictly substochastic on every
//     state that can reach the absorbing set.
//   - Truncated: iterate the dynamic-programming recurrence a fixed number
//     of times τ (Algorithm 1 step 4). This is the paper's production path;
//     only the induced ranking matters, not the exact values.
//
// States that cannot reach the absorbing set have infinite absorbing time;
// exact solvers report +Inf for them.
package markov

import (
	"errors"
	"fmt"
	"math"

	"longtailrec/internal/linalg"
	"longtailrec/internal/sparse"
)

// ErrNoAbsorbing is returned when an empty absorbing set is supplied.
var ErrNoAbsorbing = errors.New("markov: absorbing set is empty")

// maxDenseSolveVar is the largest transient-state count solved by dense
// Gaussian elimination; beyond it the exact solvers switch to Gauss–Seidel.
// It is a variable only so tests can force the iterative path.
var maxDenseSolveVar = 1500

// gaussSeidelTol and gaussSeidelMaxIter bound the iterative exact solver.
const (
	gaussSeidelTol     = 1e-12
	gaussSeidelMaxIter = 100000
)

// Chain wraps a symmetric weighted adjacency matrix with its degree vector
// and exposes random-walk quantities. The adjacency is shared, not copied.
type Chain struct {
	adj     *sparse.CSR
	degrees []float64
	n       int
}

// NewChain builds a Chain from a symmetric adjacency matrix. It validates
// squareness but trusts symmetry (the graph package guarantees it).
func NewChain(adj *sparse.CSR) (*Chain, error) {
	r, c := adj.Dims()
	if r != c {
		return nil, fmt.Errorf("markov: adjacency must be square, got %dx%d", r, c)
	}
	degrees := make([]float64, r)
	for i := 0; i < r; i++ {
		degrees[i] = adj.RowSum(i)
	}
	return NewChainWithDegrees(adj, degrees)
}

// NewChainWithDegrees builds a Chain reusing a precomputed degree vector
// (e.g. the one cached on graph.Subgraph), skipping the per-row sum pass.
// The degree slice is aliased, not copied.
func NewChainWithDegrees(adj *sparse.CSR, degrees []float64) (*Chain, error) {
	ch := &Chain{}
	if err := ch.Reset(adj, degrees); err != nil {
		return nil, err
	}
	return ch, nil
}

// Reset re-points an existing Chain at a new adjacency with its precomputed
// degree vector, so per-query hot paths can keep one Chain value in scratch
// instead of allocating one per query. degrees must hold the row sums of
// adj; both are aliased.
func (c *Chain) Reset(adj *sparse.CSR, degrees []float64) error {
	r, cols := adj.Dims()
	if r != cols {
		return fmt.Errorf("markov: adjacency must be square, got %dx%d", r, cols)
	}
	if len(degrees) != r {
		return fmt.Errorf("markov: %d degrees for %d states", len(degrees), r)
	}
	c.adj, c.degrees, c.n = adj, degrees, r
	return nil
}

// Len returns the number of states.
func (c *Chain) Len() int { return c.n }

// Degree returns the weighted degree of state i.
func (c *Chain) Degree(i int) float64 { return c.degrees[i] }

// TransitionProb returns p_ij = a(i,j)/d_i (Eq. 1); zero if d_i = 0.
func (c *Chain) TransitionProb(i, j int) float64 {
	if c.degrees[i] == 0 {
		return 0
	}
	return c.adj.At(i, j) / c.degrees[i]
}

// Stationary returns the degree-proportional stationary distribution
// (Eq. 2). For a disconnected graph this is still the formula the paper
// uses; it is the stationary distribution restricted to each component.
func (c *Chain) Stationary() []float64 {
	pi := make([]float64, c.n)
	total := 0.0
	for _, d := range c.degrees {
		total += d
	}
	if total == 0 {
		return pi
	}
	for i, d := range c.degrees {
		pi[i] = d / total
	}
	return pi
}

// StepDistribution advances a probability distribution one step:
// out = Pᵀ·in. States with zero degree keep their mass in place (self-loop
// convention), so the result remains a distribution.
func (c *Chain) StepDistribution(in, out []float64) {
	if len(in) != c.n || len(out) != c.n {
		panic("markov: StepDistribution length mismatch")
	}
	for i := range out {
		out[i] = 0
	}
	for i := 0; i < c.n; i++ {
		mass := in[i]
		if mass == 0 {
			continue
		}
		if c.degrees[i] == 0 {
			out[i] += mass
			continue
		}
		cols, vals := c.adj.Row(i)
		inv := mass / c.degrees[i]
		for k, j := range cols {
			out[j] += vals[k] * inv
		}
	}
}

// LazyStationaryPower estimates the stationary distribution by power
// iteration on the lazy walk (I+P)/2, which converges even on bipartite
// (periodic) graphs and has the same stationary distribution. Intended for
// tests cross-checking Eq. 2.
func (c *Chain) LazyStationaryPower(iters int, tol float64) []float64 {
	cur := make([]float64, c.n)
	nxt := make([]float64, c.n)
	// Start from the degree-weighted seed restricted to non-isolated states.
	active := 0
	for _, d := range c.degrees {
		if d > 0 {
			active++
		}
	}
	if active == 0 {
		return cur
	}
	for i, d := range c.degrees {
		if d > 0 {
			cur[i] = 1 / float64(active)
		}
	}
	for t := 0; t < iters; t++ {
		c.StepDistribution(cur, nxt)
		diff := 0.0
		for i := range nxt {
			nxt[i] = 0.5*cur[i] + 0.5*nxt[i]
			diff += math.Abs(nxt[i] - cur[i])
		}
		cur, nxt = nxt, cur
		if diff < tol {
			break
		}
	}
	return cur
}

// validateAbsorbing normalizes an absorbing-state list into a membership
// mask, rejecting empty or out-of-range input.
func (c *Chain) validateAbsorbing(absorbing []int) ([]bool, error) {
	if len(absorbing) == 0 {
		return nil, ErrNoAbsorbing
	}
	mask := make([]bool, c.n)
	for _, s := range absorbing {
		if s < 0 || s >= c.n {
			return nil, fmt.Errorf("markov: absorbing state %d out of range [0,%d)", s, c.n)
		}
		mask[s] = true
	}
	return mask, nil
}

// reachable returns the states that can reach the absorbing set, via BFS on
// the (undirected) graph starting from the absorbing states.
func (c *Chain) reachable(mask []bool) []bool {
	seen := make([]bool, c.n)
	queue := make([]int, 0, c.n)
	for s, a := range mask {
		if a {
			seen[s] = true
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		cols, _ := c.adj.Row(v)
		for _, w := range cols {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return seen
}

// AbsorbingTimeExact solves Eq. 6 exactly: AT(S|i) for every state i.
// Absorbing states get 0; states that cannot reach S get +Inf.
func (c *Chain) AbsorbingTimeExact(absorbing []int) ([]float64, error) {
	ones := make([]float64, c.n)
	for i := range ones {
		ones[i] = 1
	}
	return c.AbsorbingCostExact(absorbing, ones)
}

// AbsorbingCostExact solves Eq. 8 exactly with a per-state expected step
// cost: AC(S|i) = stepCost[i] + Σ_j p_ij AC(S|j) for transient i.
// stepCost[i] must already be the expectation Σ_j p_ij c(j|i); use
// StepCosts to build it from per-destination entry costs. With
// stepCost ≡ 1 this reduces to AbsorbingTimeExact.
func (c *Chain) AbsorbingCostExact(absorbing []int, stepCost []float64) ([]float64, error) {
	if len(stepCost) != c.n {
		return nil, fmt.Errorf("markov: stepCost length %d, want %d", len(stepCost), c.n)
	}
	mask, err := c.validateAbsorbing(absorbing)
	if err != nil {
		return nil, err
	}
	reach := c.reachable(mask)
	out := make([]float64, c.n)
	// Collect reachable transient states.
	transient := make([]int, 0, c.n)
	localOf := make(map[int]int)
	for i := 0; i < c.n; i++ {
		switch {
		case mask[i]:
			out[i] = 0
		case !reach[i]:
			out[i] = math.Inf(1)
		default:
			localOf[i] = len(transient)
			transient = append(transient, i)
		}
	}
	if len(transient) == 0 {
		return out, nil
	}
	if len(transient) <= maxDenseSolveVar {
		if err := c.solveDense(transient, localOf, mask, stepCost, out); err != nil {
			return nil, err
		}
		return out, nil
	}
	if err := c.solveGaussSeidel(transient, localOf, mask, stepCost, out); err != nil {
		return nil, err
	}
	return out, nil
}

// solveDense fills out[] for the transient states by dense Gaussian
// elimination on (I - P_TT)·x = stepCost_T.
func (c *Chain) solveDense(transient []int, localOf map[int]int, mask []bool, stepCost, out []float64) error {
	nt := len(transient)
	a := linalg.NewDense(nt, nt)
	b := make([]float64, nt)
	for li, i := range transient {
		a.Set(li, li, 1)
		b[li] = stepCost[i]
		d := c.degrees[i]
		if d == 0 {
			// Transient state with no transitions: cannot be reached here
			// because reachability requires an edge, but guard anyway.
			continue
		}
		cols, vals := c.adj.Row(i)
		for k, j := range cols {
			if mask[j] {
				continue // absorbing neighbors contribute 0 to the sum
			}
			lj, ok := localOf[j]
			if !ok {
				continue
			}
			a.Add(li, lj, -vals[k]/d)
		}
	}
	if err := linalg.SolveInPlace(a, b); err != nil {
		return fmt.Errorf("markov: absorbing system: %w", err)
	}
	for li, i := range transient {
		out[i] = b[li]
	}
	return nil
}

// solveGaussSeidel fills out[] via Gauss–Seidel sweeps
// x_i ← stepCost_i + Σ_j p_ij x_j, which converge monotonically from zero
// for absorbing chains.
func (c *Chain) solveGaussSeidel(transient []int, localOf map[int]int, mask []bool, stepCost, out []float64) error {
	nt := len(transient)
	x := make([]float64, nt)
	for iter := 0; iter < gaussSeidelMaxIter; iter++ {
		maxDelta := 0.0
		for li, i := range transient {
			acc := stepCost[i]
			d := c.degrees[i]
			cols, vals := c.adj.Row(i)
			for k, j := range cols {
				if mask[j] {
					continue
				}
				if lj, ok := localOf[j]; ok {
					acc += vals[k] / d * x[lj]
				}
			}
			if delta := math.Abs(acc - x[li]); delta > maxDelta {
				maxDelta = delta
			}
			x[li] = acc
		}
		if maxDelta < gaussSeidelTol {
			for li, i := range transient {
				out[i] = x[li]
			}
			return nil
		}
	}
	return fmt.Errorf("markov: Gauss-Seidel did not converge in %d iterations (n=%d)", gaussSeidelMaxIter, nt)
}

// AbsorbingTimeTruncated runs the Algorithm 1 recurrence for tau
// iterations: AT_{t+1}(S|i) = 1 + Σ_j p_ij·AT_t(S|j), AT ≡ 0 on S and at
// t=0. The returned values lower-bound the exact absorbing time and
// converge to it as tau → ∞; the paper uses τ = 15.
func (c *Chain) AbsorbingTimeTruncated(absorbing []int, tau int) ([]float64, error) {
	ones := make([]float64, c.n)
	for i := range ones {
		ones[i] = 1
	}
	return c.AbsorbingCostTruncated(absorbing, ones, tau)
}

// AbsorbingCostTruncated is the truncated-iteration analogue of
// AbsorbingCostExact (Eq. 8 with τ dynamic-programming sweeps).
func (c *Chain) AbsorbingCostTruncated(absorbing []int, stepCost []float64, tau int) ([]float64, error) {
	if len(stepCost) != c.n {
		return nil, fmt.Errorf("markov: stepCost length %d, want %d", len(stepCost), c.n)
	}
	if tau < 0 {
		return nil, fmt.Errorf("markov: negative iteration count %d", tau)
	}
	mask, err := c.validateAbsorbing(absorbing)
	if err != nil {
		return nil, err
	}
	cur := make([]float64, c.n)
	nxt := make([]float64, c.n)
	for t := 0; t < tau; t++ {
		for i := 0; i < c.n; i++ {
			if mask[i] {
				nxt[i] = 0
				continue
			}
			d := c.degrees[i]
			if d == 0 {
				// Isolated transient state: never absorbed. Keep it at the
				// running maximum-plus-one so the ranking places it last.
				nxt[i] = cur[i] + stepCost[i]
				continue
			}
			acc := stepCost[i]
			cols, vals := c.adj.Row(i)
			for k, j := range cols {
				acc += vals[k] / d * cur[j]
			}
			nxt[i] = acc
		}
		cur, nxt = nxt, cur
	}
	return cur, nil
}

// HittingTimeExact returns H(target|j) (Definition 1) for every start
// state j: the expected steps to first reach target. It is the absorbing
// time with S = {target}.
func (c *Chain) HittingTimeExact(target int) ([]float64, error) {
	return c.AbsorbingTimeExact([]int{target})
}

// HittingTimeTruncated is the τ-step truncated hitting time.
func (c *Chain) HittingTimeTruncated(target, tau int) ([]float64, error) {
	return c.AbsorbingTimeTruncated([]int{target}, tau)
}

// StepCosts converts per-destination entry costs into per-state expected
// step costs: stepCost[i] = Σ_j p_ij·enterCost[j]. This realizes the
// entropy-cost model of Eq. 9, where entering user j costs E(j) and
// entering an item costs the constant C.
func (c *Chain) StepCosts(enterCost []float64) []float64 {
	return c.StepCostsInto(enterCost, make([]float64, c.n))
}
