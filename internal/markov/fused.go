// Fused, scratch-backed variants of the Algorithm 1 truncated solvers.
// These are the production query path: the per-destination entry costs of
// Eq. 9 are folded into the dynamic-programming sweep itself, so each of
// the τ iterations is exactly one pass over the CSR — no separate StepCosts
// vector, no per-query allocation.

package markov

import (
	"context"
	"fmt"
)

// ChainScratch holds the reusable buffers of the truncated-sweep solvers.
// One scratch serves any number of sequential queries against chains of any
// size (buffers grow monotonically); it is not safe for concurrent use.
type ChainScratch struct {
	Mask     []bool    // absorbing-state membership
	Cur, Nxt []float64 // DP ping/pong buffers
	Enter    []float64 // per-state entry costs (Eq. 9), caller-filled
}

// Resize re-slices every buffer to length n, growing the backing arrays
// when needed, and zeroes Mask, Cur and Nxt. Enter is left uninitialized —
// callers that use it overwrite every element.
func (s *ChainScratch) Resize(n int) {
	grow := func(b []float64) []float64 {
		if cap(b) < n {
			return make([]float64, n, 2*n)
		}
		return b[:n]
	}
	s.Cur = grow(s.Cur)
	s.Nxt = grow(s.Nxt)
	s.Enter = grow(s.Enter)
	if cap(s.Mask) < n {
		s.Mask = make([]bool, n, 2*n)
	} else {
		s.Mask = s.Mask[:n]
	}
	for i := range s.Mask {
		s.Mask[i] = false
	}
	for i := range s.Cur {
		s.Cur[i] = 0
		s.Nxt[i] = 0
	}
}

// AbsorbingCostFused runs τ truncated dynamic-programming sweeps of the
// absorbing-cost recurrence (Eq. 8) entirely inside caller scratch.
//
// scr.Mask marks the absorbing set S. When enter is nil the step cost is
// the constant 1 and the result is the truncated absorbing time of
// AbsorbingTimeTruncated. When enter is non-nil, enter[j] is the cost of
// entering state j and the expected step cost Σ_j p_ij·enter[j] (StepCosts)
// is fused into the sweep via
//
//	AC_{t+1}(S|i) = Σ_j p_ij·(enter[j] + AC_t(S|j))
//
// which is algebraically identical to precomputing StepCosts but touches
// the CSR only once per sweep. Zero-degree transient states accumulate
// their own step cost per sweep (1 with nil enter, 0 otherwise), matching
// the allocating solvers.
//
// The returned slice aliases scr (either Cur or Nxt) and is valid until the
// scratch is reused. scr must have been Resize'd to c.Len(), with Mask set
// by the caller after the Resize.
//
//ltr:allocfree
func (c *Chain) AbsorbingCostFused(scr *ChainScratch, enter []float64, tau int) ([]float64, error) {
	return c.AbsorbingCostFusedCtx(nil, scr, enter, tau)
}

// AbsorbingCostFusedCtx is AbsorbingCostFused with cooperative
// cancellation: ctx is checked before each of the τ sweeps, so a
// cancelled or deadlined query aborts mid-walk instead of finishing all
// sweeps. A nil ctx skips the checks entirely — the option-free hot path
// pays nothing. The context error is returned unwrapped, so
// errors.Is(err, context.Canceled) holds for callers.
//
//ltr:allocfree
func (c *Chain) AbsorbingCostFusedCtx(ctx context.Context, scr *ChainScratch, enter []float64, tau int) ([]float64, error) {
	if len(scr.Mask) != c.n || len(scr.Cur) != c.n || len(scr.Nxt) != c.n {
		return nil, fmt.Errorf("markov: scratch sized for %d states, chain has %d", len(scr.Mask), c.n)
	}
	if enter != nil && len(enter) != c.n {
		return nil, fmt.Errorf("markov: enter length %d, want %d", len(enter), c.n)
	}
	if tau < 0 {
		return nil, fmt.Errorf("markov: negative iteration count %d", tau)
	}
	any := false
	for _, a := range scr.Mask {
		if a {
			any = true
			break
		}
	}
	if !any {
		return nil, ErrNoAbsorbing
	}
	cur, nxt, mask := scr.Cur, scr.Nxt, scr.Mask
	for t := 0; t < tau; t++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				// Keep the scratch consistent (the swap below has not run
				// for this sweep) so the pooled buffers stay reusable.
				scr.Cur, scr.Nxt = cur, nxt
				return nil, err
			}
		}
		for i := 0; i < c.n; i++ {
			if mask[i] {
				nxt[i] = 0
				continue
			}
			d := c.degrees[i]
			if d == 0 {
				// Isolated transient state: never absorbed. Keep it at the
				// running maximum-plus-one (unit costs) or frozen (entry
				// costs contribute nothing without transitions).
				if enter == nil {
					nxt[i] = cur[i] + 1
				} else {
					nxt[i] = cur[i]
				}
				continue
			}
			cols, vals := c.adj.Row(i)
			if enter == nil {
				acc := 1.0
				for k, j := range cols {
					acc += vals[k] / d * cur[j]
				}
				nxt[i] = acc
			} else {
				acc := 0.0
				for k, j := range cols {
					acc += vals[k] * (enter[j] + cur[j])
				}
				nxt[i] = acc / d
			}
		}
		cur, nxt = nxt, cur
	}
	scr.Cur, scr.Nxt = cur, nxt
	return cur, nil
}

// StepCostsInto is StepCosts writing into caller-provided storage:
// out[i] = Σ_j p_ij·enterCost[j]. Used by the exact solve path of the query
// engine, where the linear-system solvers still need an explicit step-cost
// vector.
//
//ltr:allocfree
func (c *Chain) StepCostsInto(enterCost, out []float64) []float64 {
	if len(enterCost) != c.n || len(out) != c.n {
		panic(fmt.Sprintf("markov: StepCostsInto lengths %d/%d, want %d", len(enterCost), len(out), c.n))
	}
	for i := 0; i < c.n; i++ {
		d := c.degrees[i]
		if d == 0 {
			out[i] = 0
			continue
		}
		cols, vals := c.adj.Row(i)
		acc := 0.0
		for k, j := range cols {
			acc += vals[k] * enterCost[j]
		}
		out[i] = acc / d
	}
	return out
}
