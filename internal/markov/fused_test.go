package markov

import (
	"math"
	"math/rand"
	"testing"

	"longtailrec/internal/sparse"
)

// fusedTestChain builds a random symmetric adjacency with some isolated
// states, plus its Chain.
func fusedTestChain(t *testing.T, n int, seed int64) *Chain {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	coo := sparse.NewCOO(n, n)
	for e := 0; e < 3*n; e++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j || i == n-1 || j == n-1 { // keep state n-1 isolated
			continue
		}
		w := float64(1 + rng.Intn(5))
		coo.Add(i, j, w)
		coo.Add(j, i, w)
	}
	ch, err := NewChain(coo.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

// TestFusedMatchesTruncatedTime checks the enter == nil fused kernel is
// bit-identical to AbsorbingTimeTruncated (same summation order).
func TestFusedMatchesTruncatedTime(t *testing.T) {
	ch := fusedTestChain(t, 40, 1)
	absorbing := []int{0, 7}
	want, err := ch.AbsorbingTimeTruncated(absorbing, 15)
	if err != nil {
		t.Fatal(err)
	}
	var scr ChainScratch
	scr.Resize(ch.Len())
	for _, s := range absorbing {
		scr.Mask[s] = true
	}
	got, err := ch.AbsorbingCostFused(&scr, nil, 15)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("state %d: fused %v, truncated %v", i, got[i], want[i])
		}
	}
}

// TestFusedMatchesStepCostPipeline checks the fused entry-cost sweep
// against the two-pass StepCosts + AbsorbingCostTruncated pipeline. The
// summation order differs, so agreement is to floating-point tolerance.
func TestFusedMatchesStepCostPipeline(t *testing.T) {
	ch := fusedTestChain(t, 35, 2)
	rng := rand.New(rand.NewSource(3))
	enter := make([]float64, ch.Len())
	for i := range enter {
		enter[i] = 0.05 + rng.Float64()*2
	}
	absorbing := []int{3, 11, 19}
	step := ch.StepCosts(enter)
	want, err := ch.AbsorbingCostTruncated(absorbing, step, 15)
	if err != nil {
		t.Fatal(err)
	}
	var scr ChainScratch
	scr.Resize(ch.Len())
	for _, s := range absorbing {
		scr.Mask[s] = true
	}
	got, err := ch.AbsorbingCostFused(&scr, enter, 15)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		diff := math.Abs(want[i] - got[i])
		scale := math.Max(1, math.Abs(want[i]))
		if diff/scale > 1e-9 {
			t.Fatalf("state %d: fused %v, pipeline %v", i, got[i], want[i])
		}
	}
	// Zero-degree transient states must stay frozen under entry costs.
	iso := ch.Len() - 1
	if ch.Degree(iso) != 0 {
		t.Fatal("expected state n-1 isolated")
	}
	if got[iso] != 0 {
		t.Fatalf("isolated state drifted to %v under entry costs", got[iso])
	}
}

// TestFusedScratchReuse runs queries of different sizes through one
// scratch, ensuring Resize fully re-initializes state.
func TestFusedScratchReuse(t *testing.T) {
	var scr ChainScratch
	for q, n := range []int{30, 12, 50} {
		ch := fusedTestChain(t, n, int64(10+q))
		absorbing := []int{1, 2}
		want, err := ch.AbsorbingTimeTruncated(absorbing, 10)
		if err != nil {
			t.Fatal(err)
		}
		scr.Resize(ch.Len())
		for _, s := range absorbing {
			scr.Mask[s] = true
		}
		got, err := ch.AbsorbingCostFused(&scr, nil, 10)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("query %d state %d: %v vs %v", q, i, got[i], want[i])
			}
		}
	}
}

// TestFusedValidation exercises the error paths.
func TestFusedValidation(t *testing.T) {
	ch := fusedTestChain(t, 10, 5)
	var scr ChainScratch
	scr.Resize(5) // wrong size
	if _, err := ch.AbsorbingCostFused(&scr, nil, 3); err == nil {
		t.Fatal("mis-sized scratch accepted")
	}
	scr.Resize(10)
	if _, err := ch.AbsorbingCostFused(&scr, nil, 3); err != ErrNoAbsorbing {
		t.Fatalf("empty mask: err = %v, want ErrNoAbsorbing", err)
	}
	scr.Mask[0] = true
	if _, err := ch.AbsorbingCostFused(&scr, make([]float64, 4), 3); err == nil {
		t.Fatal("mis-sized enter accepted")
	}
	if _, err := ch.AbsorbingCostFused(&scr, nil, -1); err == nil {
		t.Fatal("negative tau accepted")
	}
}

// TestNewChainWithDegreesAndReset checks the degree-reusing constructors.
func TestNewChainWithDegreesAndReset(t *testing.T) {
	ch := fusedTestChain(t, 20, 6)
	degrees := make([]float64, ch.Len())
	for i := range degrees {
		degrees[i] = ch.Degree(i)
	}
	ch2, err := NewChainWithDegrees(ch.adj, degrees)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ch.Len(); i++ {
		if ch2.Degree(i) != ch.Degree(i) {
			t.Fatalf("degree %d mismatch", i)
		}
	}
	if err := ch2.Reset(ch.adj, degrees[:5]); err == nil {
		t.Fatal("short degree vector accepted")
	}
	rect := sparse.NewCSRFromDense([][]float64{{1, 0, 0}, {0, 1, 0}})
	if _, err := NewChainWithDegrees(rect, []float64{1, 1}); err == nil {
		t.Fatal("rectangular adjacency accepted")
	}
}
