package markov

import (
	"fmt"
	"math"

	"longtailrec/internal/linalg"
)

// This file implements the §3.2 comparator proximities the paper argues
// cannot challenge long-tail recommendation: the Katz index and
// random-walk-with-restart (no popularity discount at all), and commute
// time (dominated by the stationary distribution, hence popularity-biased).
// Having the real mechanisms lets the benchmark suite demonstrate those
// biases instead of asserting them.

// KatzScores computes the truncated Katz index from node q to every node:
// K(q,·) = Σ_{l=1..iters} β^l·(A^l)_{q,·}. The series converges for
// β < 1/λ_max(A); callers should keep β small (e.g. 0.005 for rating
// graphs). Returned scores are raw proximities, higher = closer.
func (c *Chain) KatzScores(q int, beta float64, iters int) ([]float64, error) {
	if q < 0 || q >= c.n {
		return nil, fmt.Errorf("markov: Katz source %d out of range [0,%d)", q, c.n)
	}
	if beta <= 0 {
		return nil, fmt.Errorf("markov: Katz beta %v must be positive", beta)
	}
	if iters < 1 {
		return nil, fmt.Errorf("markov: Katz iters %d must be >= 1", iters)
	}
	cur := make([]float64, c.n)
	nxt := make([]float64, c.n)
	out := make([]float64, c.n)
	cur[q] = 1
	scale := 1.0
	for l := 1; l <= iters; l++ {
		// nxt = Aᵀ·cur = A·cur (A symmetric).
		c.adj.MulVec(cur, nxt)
		scale *= beta
		if scale < 1e-300 {
			break
		}
		for i := range out {
			out[i] += scale * nxt[i]
		}
		cur, nxt = nxt, cur
	}
	return out, nil
}

// RWRScores computes random-walk-with-restart proximity from node q: the
// stationary distribution of a walk that restarts at q with probability
// 1-damping after every step. Equivalent to single-source personalized
// PageRank on the chain.
func (c *Chain) RWRScores(q int, damping float64, iters int, tol float64) ([]float64, error) {
	if q < 0 || q >= c.n {
		return nil, fmt.Errorf("markov: RWR source %d out of range [0,%d)", q, c.n)
	}
	if damping <= 0 || damping >= 1 {
		return nil, fmt.Errorf("markov: RWR damping %v must be in (0,1)", damping)
	}
	if iters < 1 {
		iters = 100
	}
	if tol <= 0 {
		tol = 1e-10
	}
	cur := make([]float64, c.n)
	nxt := make([]float64, c.n)
	cur[q] = 1
	for it := 0; it < iters; it++ {
		c.StepDistribution(cur, nxt)
		diff := 0.0
		for i := range nxt {
			v := damping * nxt[i]
			if i == q {
				v += 1 - damping
			}
			diff += math.Abs(v - cur[i])
			nxt[i] = v
		}
		cur, nxt = nxt, cur
		if diff < tol {
			break
		}
	}
	return cur, nil
}

// maxCommuteNodes bounds the dense Laplacian eigendecomposition inside
// CommuteTimes; Jacobi sweeps are O(n³) per pass.
const maxCommuteNodes = 600

// CommuteTimes computes the commute time C(q,j) = H(q|j) + H(j|q) for
// every node j via the Laplacian pseudoinverse identity
// C(i,j) = vol(G)·(ℓ⁺_ii + ℓ⁺_jj − 2·ℓ⁺_ij). Exact but dense: it
// eigendecomposes the n×n Laplacian, so it is limited to graphs with at
// most 600 nodes — it exists as a comparator, not a production path.
// Unreachable pairs (different components) return +Inf.
func (c *Chain) CommuteTimes(q int) ([]float64, error) {
	if q < 0 || q >= c.n {
		return nil, fmt.Errorf("markov: commute source %d out of range [0,%d)", q, c.n)
	}
	if c.n > maxCommuteNodes {
		return nil, fmt.Errorf("markov: commute time limited to %d nodes, graph has %d", maxCommuteNodes, c.n)
	}
	// L = D − A.
	lap := linalg.NewDense(c.n, c.n)
	vol := 0.0
	for i := 0; i < c.n; i++ {
		lap.Set(i, i, c.degrees[i])
		vol += c.degrees[i]
		cols, vals := c.adj.Row(i)
		for k, j := range cols {
			lap.Add(i, j, -vals[k])
		}
	}
	vals, vecs, err := linalg.SymEigen(lap)
	if err != nil {
		return nil, fmt.Errorf("markov: Laplacian eigen: %w", err)
	}
	// ℓ⁺ = Σ_{λ>0} (1/λ)·v·vᵀ. Zero eigenvalues correspond to connected
	// components; treat |λ| below a relative threshold as zero.
	thresh := 1e-9 * math.Max(1, math.Abs(vals[0]))
	// Component detection for unreachable pairs.
	comp := c.componentLabels()
	diag := make([]float64, c.n)
	cross := make([]float64, c.n) // ℓ⁺_{qj}
	vq := make([]float64, c.n)
	for e := 0; e < c.n; e++ {
		if vals[e] <= thresh {
			continue
		}
		inv := 1 / vals[e]
		vecs.Col(e, vq)
		vqe := vq[q]
		for j := 0; j < c.n; j++ {
			diag[j] += inv * vq[j] * vq[j]
			cross[j] += inv * vqe * vq[j]
		}
	}
	out := make([]float64, c.n)
	lqq := diag[q]
	for j := 0; j < c.n; j++ {
		if comp[j] != comp[q] {
			out[j] = math.Inf(1)
			continue
		}
		ct := vol * (lqq + diag[j] - 2*cross[j])
		if ct < 0 {
			ct = 0 // numerical round-off at j == q
		}
		out[j] = ct
	}
	return out, nil
}

// AbsorptionProbability solves, for every state i, the probability that a
// walker starting at i is absorbed at `target` rather than any other
// member of the absorbing set: b_i = P_{i,target} + Σ_{j transient}
// p_ij·b_j. For the Absorbing Time recommender this answers "*which* of
// the user's rated items does a candidate item drain into", a diagnostic
// for explaining recommendations. target must be a member of absorbing.
// States that cannot reach the absorbing set get probability 0.
func (c *Chain) AbsorptionProbability(absorbing []int, target int) ([]float64, error) {
	mask, err := c.validateAbsorbing(absorbing)
	if err != nil {
		return nil, err
	}
	if target < 0 || target >= c.n || !mask[target] {
		return nil, fmt.Errorf("markov: target %d is not an absorbing state", target)
	}
	reach := c.reachable(mask)
	out := make([]float64, c.n)
	out[target] = 1
	transient := make([]int, 0, c.n)
	localOf := make(map[int]int)
	for i := 0; i < c.n; i++ {
		if !mask[i] && reach[i] {
			localOf[i] = len(transient)
			transient = append(transient, i)
		}
	}
	if len(transient) == 0 {
		return out, nil
	}
	// Gauss–Seidel on b_i = p_{i,target} + Σ_{j transient} p_ij·b_j; the
	// iteration matrix is the same substochastic P_TT as the time solver,
	// so convergence is monotone from zero.
	x := make([]float64, len(transient))
	for iter := 0; iter < gaussSeidelMaxIter; iter++ {
		maxDelta := 0.0
		for li, i := range transient {
			d := c.degrees[i]
			cols, vals := c.adj.Row(i)
			acc := 0.0
			for k, j := range cols {
				switch {
				case j == target:
					acc += vals[k] / d
				case mask[j]:
					// Other absorbing states contribute 0.
				default:
					if lj, ok := localOf[j]; ok {
						acc += vals[k] / d * x[lj]
					}
				}
			}
			if delta := math.Abs(acc - x[li]); delta > maxDelta {
				maxDelta = delta
			}
			x[li] = acc
		}
		if maxDelta < gaussSeidelTol {
			break
		}
	}
	for li, i := range transient {
		out[i] = x[li]
	}
	return out, nil
}

// componentLabels labels nodes by connected component.
func (c *Chain) componentLabels() []int {
	labels := make([]int, c.n)
	for i := range labels {
		labels[i] = -1
	}
	comp := 0
	queue := make([]int, 0, c.n)
	for s := 0; s < c.n; s++ {
		if labels[s] != -1 {
			continue
		}
		labels[s] = comp
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			cols, _ := c.adj.Row(v)
			for _, w := range cols {
				if labels[w] == -1 {
					labels[w] = comp
					queue = append(queue, w)
				}
			}
		}
		comp++
	}
	return labels
}
