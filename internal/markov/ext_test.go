package markov

import (
	"math"
	"math/rand"
	"testing"

	"longtailrec/internal/graph"
)

func TestKatzScoresBasics(t *testing.T) {
	g := figure2Graph(t)
	ch := chainOf(t, g)
	q := g.UserNode(4)
	scores, err := ch.KatzScores(q, 0.01, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Direct neighbors (M2, M3) must outscore non-neighbors.
	if scores[g.ItemNode(1)] <= scores[g.ItemNode(3)] {
		t.Fatalf("neighbor M2 %v not above distant M4 %v", scores[g.ItemNode(1)], scores[g.ItemNode(3)])
	}
	for i, s := range scores {
		if s < 0 || math.IsNaN(s) {
			t.Fatalf("Katz score %v at %d", s, i)
		}
	}
}

func TestKatzMatchesPowerSeries(t *testing.T) {
	// Two-step check: K = βA + β²A² row q.
	g := figure2Graph(t)
	ch := chainOf(t, g)
	q := g.ItemNode(0)
	beta := 0.02
	got, err := ch.KatzScores(q, beta, 2)
	if err != nil {
		t.Fatal(err)
	}
	n := ch.Len()
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			a[i][j] = g.Weight(i, j)
		}
	}
	for j := 0; j < n; j++ {
		want := beta * a[q][j]
		for k := 0; k < n; k++ {
			want += beta * beta * a[q][k] * a[k][j]
		}
		if math.Abs(got[j]-want) > 1e-9 {
			t.Fatalf("Katz[%d] = %v, want %v", j, got[j], want)
		}
	}
}

func TestKatzValidation(t *testing.T) {
	ch := chainOf(t, figure2Graph(t))
	if _, err := ch.KatzScores(-1, 0.01, 5); err == nil {
		t.Fatal("bad source accepted")
	}
	if _, err := ch.KatzScores(0, 0, 5); err == nil {
		t.Fatal("zero beta accepted")
	}
	if _, err := ch.KatzScores(0, 0.01, 0); err == nil {
		t.Fatal("zero iters accepted")
	}
}

func TestRWRScoresIsDistribution(t *testing.T) {
	g := figure2Graph(t)
	ch := chainOf(t, g)
	q := g.UserNode(0)
	scores, err := ch.RWRScores(q, 0.5, 500, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, s := range scores {
		if s < 0 {
			t.Fatalf("negative RWR %v", s)
		}
		sum += s
	}
	if math.Abs(sum-1) > 1e-8 {
		t.Fatalf("RWR sums to %v", sum)
	}
	// Restart node keeps the most mass.
	for i, s := range scores {
		if i != q && s > scores[q] {
			t.Fatalf("node %d outranks restart node", i)
		}
	}
}

func TestRWRValidation(t *testing.T) {
	ch := chainOf(t, figure2Graph(t))
	if _, err := ch.RWRScores(99, 0.5, 10, 0); err == nil {
		t.Fatal("bad source accepted")
	}
	if _, err := ch.RWRScores(0, 1.5, 10, 0); err == nil {
		t.Fatal("damping > 1 accepted")
	}
}

func TestCommuteTimesMatchHittingTimes(t *testing.T) {
	// The defining identity: C(q,j) = H(q|j) + H(j|q).
	g := figure2Graph(t)
	ch := chainOf(t, g)
	q := g.UserNode(4)
	ct, err := ch.CommuteTimes(q)
	if err != nil {
		t.Fatal(err)
	}
	toQ, err := ch.HittingTimeExact(q) // H(q|j) for all j
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < ch.Len(); j++ {
		if j == q {
			if ct[j] > 1e-6 {
				t.Fatalf("C(q,q) = %v", ct[j])
			}
			continue
		}
		fromQ, err := ch.HittingTimeExact(j) // H(j|i) for all i; take i=q
		if err != nil {
			t.Fatal(err)
		}
		want := toQ[j] + fromQ[q]
		if math.Abs(ct[j]-want) > 1e-5*math.Max(1, want) {
			t.Fatalf("C(q,%d) = %v, want H+H = %v", j, ct[j], want)
		}
	}
}

func TestCommuteTimesDisconnected(t *testing.T) {
	b := graph.NewBuilder(2, 2)
	_ = b.AddRating(0, 0, 5)
	_ = b.AddRating(1, 1, 3)
	g := b.Build()
	ch := chainOf(t, g)
	ct, err := ch.CommuteTimes(g.UserNode(0))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(ct[g.UserNode(1)], 1) {
		t.Fatalf("cross-component commute time %v", ct[g.UserNode(1)])
	}
	if math.IsInf(ct[g.ItemNode(0)], 1) {
		t.Fatal("same-component commute time infinite")
	}
}

func TestCommuteTimesSizeGuard(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := graph.NewBuilder(400, 300)
	for u := 0; u < 400; u++ {
		for _, i := range rng.Perm(300)[:3] {
			_ = b.AddRating(u, i, 3)
		}
	}
	ch := chainOf(t, b.Build())
	if _, err := ch.CommuteTimes(0); err == nil {
		t.Fatal("oversized graph accepted")
	}
}

// TestSection32PopularityBias validates the paper's §3.2/§3.3 motivation:
// commute time and RWR rank items nearly in popularity order, while the
// hitting time H(q|j) breaks that correlation by discounting the
// stationary mass.
func TestSection32PopularityBias(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// A popularity-skewed bipartite graph.
	const nu, ni = 60, 40
	b := graph.NewBuilder(nu, ni)
	for u := 0; u < nu; u++ {
		seen := map[int]bool{}
		for k := 0; k < 8; k++ {
			i := int(float64(ni) * math.Pow(rng.Float64(), 2.5))
			if i >= ni || seen[i] {
				continue
			}
			seen[i] = true
			_ = b.AddRating(u, i, float64(1+rng.Intn(5)))
		}
	}
	g := b.Build()
	ch := chainOf(t, g)
	pop := g.ItemPopularity()
	q := g.UserNode(0)

	// High damping: the walk mixes toward the stationary distribution,
	// which is the regime the paper's popularity-bias argument describes.
	rwr, err := ch.RWRScores(q, 0.9, 2000, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := ch.CommuteTimes(q)
	if err != nil {
		t.Fatal(err)
	}
	ht, err := ch.HittingTimeExact(q)
	if err != nil {
		t.Fatal(err)
	}

	// Spearman-style rank correlation between item popularity and each
	// proximity's preference order.
	corr := func(score func(item int) float64) float64 {
		type pair struct{ pop, s float64 }
		var ps []pair
		for i := 0; i < ni; i++ {
			v := score(i)
			if math.IsInf(v, 0) || math.IsNaN(v) {
				continue
			}
			ps = append(ps, pair{pop: float64(pop[i]), s: v})
		}
		// Pearson on the raw values is enough for a sign/strength check.
		var mp, ms float64
		for _, p := range ps {
			mp += p.pop
			ms += p.s
		}
		mp /= float64(len(ps))
		ms /= float64(len(ps))
		var num, dp, ds float64
		for _, p := range ps {
			num += (p.pop - mp) * (p.s - ms)
			dp += (p.pop - mp) * (p.pop - mp)
			ds += (p.s - ms) * (p.s - ms)
		}
		if dp == 0 || ds == 0 {
			return 0
		}
		return num / math.Sqrt(dp*ds)
	}
	rwrCorr := corr(func(i int) float64 { return rwr[g.ItemNode(i)] })
	ctCorr := corr(func(i int) float64 { return -ct[g.ItemNode(i)] }) // small commute = preferred
	htCorr := corr(func(i int) float64 { return -ht[g.ItemNode(i)] }) // small hitting time = preferred

	if rwrCorr < 0.5 {
		t.Fatalf("RWR popularity correlation %v — expected strong bias", rwrCorr)
	}
	if ctCorr < 0.5 {
		t.Fatalf("commute-time popularity correlation %v — expected strong bias", ctCorr)
	}
	if htCorr > ctCorr-0.2 {
		t.Fatalf("hitting time correlation %v not clearly below commute time %v", htCorr, ctCorr)
	}
}
