// Package longtail is the public API of this library: a Go reproduction of
// "Challenging the Long Tail Recommendation" (Yin, Cui, Li, Yao, Chen;
// PVLDB 5(9), 2012).
//
// The paper proposes ranking items for a user by random-walk statistics on
// the user–item bipartite graph — Hitting Time (HT), Absorbing Time (AT)
// and two entropy-biased Absorbing Cost variants (AC1, AC2) — so that
// niche items a user would love outrank the generic popular items that
// classic recommenders push. This package wires the full suite together:
//
//	d, _ := longtail.LoadMovieLensFile("ratings.dat")
//	sys, _ := longtail.NewSystem(d.Data, longtail.DefaultConfig())
//	ac2, _ := sys.AC2() // trains the LDA entropy model lazily
//	recs, _ := ac2.Recommend(user, 10)
//
// Everything is implemented from scratch on the standard library: sparse
// matrices, Markov-chain solvers, LDA (collapsed Gibbs), truncated SVD,
// personalized PageRank, and the paper's evaluation protocols. See
// DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured results.
package longtail

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"longtailrec/internal/assoc"
	"longtailrec/internal/cache"
	"longtailrec/internal/cf"
	"longtailrec/internal/core"
	"longtailrec/internal/dataset"
	"longtailrec/internal/entropy"
	"longtailrec/internal/graph"
	"longtailrec/internal/lda"
	"longtailrec/internal/markov"
	"longtailrec/internal/mf"
	"longtailrec/internal/pagerank"
	"longtailrec/internal/persist"
	"longtailrec/internal/shard"
	"longtailrec/internal/svd"
	"longtailrec/internal/synth"
	"longtailrec/internal/topk"
	"longtailrec/internal/wal"
	"longtailrec/internal/worlds"
)

// Re-exported core types, so callers interact with one package.
type (
	// Recommender is the uniform algorithm interface (see internal/core).
	Recommender = core.Recommender
	// Scored pairs an item with its ranking score.
	Scored = core.Scored
	// Rating is a (user, item, score) observation.
	Rating = dataset.Rating
	// Dataset is an indexed rating collection.
	Dataset = dataset.Dataset
	// World is a synthetic corpus with ground truth (see internal/synth).
	World = synth.World
	// Anchor attributes a recommendation to one of the user's rated items.
	Anchor = core.Anchor
	// Request is one context-aware recommendation query: user, list size,
	// cancellation context and the per-request serving options
	// (exclusions, candidate slate, long-tail-only mode, fallback
	// policy). See internal/core.Request.
	Request = core.Request
	// Response is the result of one Request plus its serving metadata
	// (fallback, graph epoch, cache hit, resolved algorithm).
	Response = core.Response
	// RecommenderV2 is the context-aware query surface every recommender
	// in the suite implements.
	RecommenderV2 = core.RecommenderV2
)

// ErrColdUser is returned when a query user has no rated items.
var ErrColdUser = core.ErrColdUser

// MaxDenseAdmissions is the dense-admission cap of the auto-grow write
// path: one write may admit at most this many new user or item ids past
// the current universe edge (graph.MaxDenseAdmissions — the single
// source of truth, shared with the serving layer's out-of-range error
// text). Genuinely sparse external id spaces belong behind an id-mapping
// layer, not a larger cap.
const MaxDenseAdmissions = graph.MaxDenseAdmissions

// BatchRecommender is implemented by recommenders that score many users
// concurrently (the walk recommenders, via the pooled query engine).
type BatchRecommender = core.BatchRecommender

// Config tunes the full algorithm suite.
type Config struct {
	// Walk carries µ (subgraph item budget), τ (truncated iterations) and
	// the exact-solve switch for HT/AT/AC (Algorithm 1 parameters).
	Walk core.WalkOptions
	// UserCost is the C constant of the Absorbing Cost model (Eq. 9).
	UserCost float64
	// EntropyFloor keeps step costs strictly positive.
	EntropyFloor float64
	// LDA configures both the AC2 entropy model and the LDA baseline.
	LDA lda.Config
	// SVDRank is the PureSVD factor count; <= 0 means 50.
	SVDRank int
	// MF configures the SGD factorization baselines (BiasedMF, SVD++,
	// AsySVD); zero-valued fields take mf defaults.
	MF mf.Options
	// PageRank configures the DPPR baseline (λ = 0.5 in the paper).
	PageRank pagerank.Options
	// KNNNeighbors sizes the kNN baselines; <= 0 means 50.
	KNNNeighbors int
	// Seed drives every randomized component.
	Seed int64
	// CacheSize enables the epoch-invalidated recommendation result cache:
	// up to this many (user, algorithm, k) results are held across all
	// algorithms, keyed by graph epoch so live writes invalidate them.
	// <= 0 disables caching — the right setting for offline evaluation;
	// serving deployments should size it to their hot user set (the
	// ltr-server binary defaults to 4096).
	CacheSize int
	// CompactThreshold is how many live rating writes may accumulate in
	// the graph's delta overlay before an automatic compaction folds them
	// into the CSR. <= 0 means 1024. Compaction never moves the epoch, so
	// it is invisible to the cache.
	CompactThreshold int
	// AutoGrow opens the universe to live traffic: ApplyRating admits
	// users and items the system has never seen (appending them to the
	// serving graph) instead of rejecting the write. The walk recommenders
	// serve newcomers as soon as they have edges; snapshot-trained
	// baselines report them cold until retrained. Off by default — the
	// right setting for offline evaluation against a frozen corpus;
	// ServingConfig turns it on.
	AutoGrow bool
	// ShardCount partitions serving across this many user-partitioned
	// replicas: each shard holds its own graph replica, result cache and
	// epoch, requests route to shard.Assign(user, ShardCount), and a live
	// write bumps only its own shard's epoch — so its cache-invalidation
	// blast radius is one shard, not the fleet. CacheSize is the total
	// budget, split evenly across shards. <= 1 means 1, the single-replica
	// stack (byte-identical to the unsharded behavior). All replicas are
	// views over ONE shared immutable base graph (each owns only its write
	// overlay, epoch and cache — graph.ShareViews), so the shard count is
	// a cache/invalidation knob, not a memory multiplier; cross-shard
	// consistency is eventual (a write is visible to its own user's shard
	// immediately, to other shards' walks only at the next compaction or
	// snapshot refresh — see SnapshotRefresh).
	ShardCount int
	// WALDir enables durable live writes: ApplyRating group-commits
	// through an append-only, checksummed, fsync'd write-ahead log in
	// this directory (wal.log) and is acknowledged only after its batch
	// is durable. NewSystem recovers state from the directory first —
	// checkpoint.ltr if present, then the log's tail — so a restarted
	// system resumes with every acknowledged write intact. Empty (the
	// default) serves from memory only, exactly as before.
	WALDir string
	// WALMaxBatch caps how many concurrent writers one group-commit
	// batch (one fsync, one apply, one epoch bump per written shard) may
	// carry. <= 0 means 64. Only meaningful with WALDir set.
	WALMaxBatch int
	// WALMaxDelay is how long the first writer of a batch may wait for
	// company before the batch commits anyway — trading single-write
	// latency for fsync amortization under light concurrency. <= 0 means
	// no timed wait (pure piggybacking: a batch forms from whatever
	// queued while the previous commit was in flight). Only meaningful
	// with WALDir set.
	WALMaxDelay time.Duration
}

// DefaultConfig returns the paper's defaults: µ = 6000, τ = 15, λ = 0.5,
// LDA α = 50/K, β = 0.1.
func DefaultConfig() Config {
	return Config{
		Walk:         core.WalkOptions{MaxSubgraphItems: 6000, Iterations: 15},
		UserCost:     1.0,
		EntropyFloor: 0.05,
		LDA:          lda.Config{NumTopics: 20, Iterations: 60},
		SVDRank:      50,
		MF:           mf.DefaultOptions(),
		PageRank:     pagerank.Options{Damping: 0.5},
		KNNNeighbors: 50,
	}
}

// ServingConfig returns DefaultConfig tuned for a live serving deployment:
// the recommendation result cache on at the given capacity (<= 0 means
// 4096), delta-overlay auto-compaction every compactThreshold writes, and
// the universe open to unseen users and items (AutoGrow). ShardCount
// defaults to 1 — the single-replica stack; deployments with a heavy
// mixed read/write stream raise it to confine each write's cache
// invalidation to its own shard (ltr-server's -shards flag).
func ServingConfig(cacheSize, compactThreshold int) Config {
	cfg := DefaultConfig()
	if cacheSize <= 0 {
		cacheSize = 4096
	}
	cfg.CacheSize = cacheSize
	cfg.CompactThreshold = compactThreshold
	cfg.AutoGrow = true
	cfg.ShardCount = 1
	return cfg
}

func (c Config) withDefaults() Config {
	if c.SVDRank <= 0 {
		c.SVDRank = 50
	}
	if c.KNNNeighbors <= 0 {
		c.KNNNeighbors = 50
	}
	if c.LDA.NumTopics <= 0 {
		c.LDA.NumTopics = 20
	}
	if c.UserCost <= 0 {
		c.UserCost = 1.0
	}
	if c.EntropyFloor <= 0 {
		c.EntropyFloor = 0.05
	}
	if c.CompactThreshold <= 0 {
		c.CompactThreshold = 1024
	}
	if c.ShardCount <= 1 {
		c.ShardCount = 1
	}
	return c
}

// System bundles a training corpus with lazily constructed recommenders.
// Heavy models (LDA, SVD) are trained on first use and cached; a System is
// safe for concurrent use after construction.
//
// Serving runs on a fleet of Config.ShardCount user-partitioned replicas
// (internal/shard): each shard holds its own graph replica, result cache
// and epoch; reads and writes for a user route to shard.Assign(user, N),
// so a live write invalidates only its own shard's cached results. With
// ShardCount 1 (the default) the fleet is exactly the old single-replica
// stack. Shared dataset-derived models (LDA, SVD, entropies, kNN) are
// trained once and reused by every shard's recommender.
type System struct {
	data *dataset.Dataset
	cfg  Config

	// fleet owns the serving replicas: per-shard graph, result cache and
	// epoch. Always non-nil with at least one replica.
	fleet *shard.Fleet
	// basePop is the item popularity of the corpus every replica was
	// built from — the baseline the fleet's merged live popularity sums
	// per-shard write deltas over.
	basePop []int

	// ckptPath is where SnapshotRefresh writes the fleet checkpoint
	// (empty when durability is off).
	ckptPath  string
	closeOnce sync.Once
	closeErr  error

	mu         sync.Mutex
	ldaModel   *lda.Model
	ldaErr     error
	itemKNN    *cf.ItemKNN
	itemKNNErr error
	cache      map[string]Recommender
	errCache   map[string]error
}

// WAL artifact names inside Config.WALDir.
const (
	walFileName        = "wal.log"
	checkpointFileName = "checkpoint.ltr"
)

// NewSystem indexes the dataset and prepares the algorithm suite,
// building Config.ShardCount serving views over ONE shared corpus graph.
func NewSystem(d *dataset.Dataset, cfg Config) (*System, error) {
	if d == nil {
		return nil, fmt.Errorf("longtail: nil dataset")
	}
	cfg = cfg.withDefaults()
	perShardCache := 0
	if cfg.CacheSize > 0 {
		// The configured capacity is the fleet-wide budget, split evenly.
		perShardCache = (cfg.CacheSize + cfg.ShardCount - 1) / cfg.ShardCount
	}
	// Restore precedes fleet construction: a checkpoint replaces the
	// dataset-built graph wholesale, and no recommender exists yet (they
	// are built lazily), so the swap cannot race a reader.
	views, err := buildGraphViews(d, cfg)
	if err != nil {
		return nil, err
	}
	replicas := make([]*shard.Replica, cfg.ShardCount)
	for i := range replicas {
		rep := &shard.Replica{Graph: views[i]}
		if perShardCache > 0 {
			rep.Cache = cache.New[core.CacheEntry](perShardCache)
		}
		replicas[i] = rep
	}
	fleet, err := shard.NewFleet(replicas)
	if err != nil {
		return nil, fmt.Errorf("longtail: %w", err)
	}
	if cfg.ShardCount > 1 {
		// Shared-base views cannot auto-fold from inside their own write
		// path; the fleet watches the pending total and drives the group
		// fold. (The single-view graph folds inline, set above.)
		fleet.SetCompactThreshold(cfg.CompactThreshold)
	}
	s := &System{
		data:     d,
		cfg:      cfg,
		fleet:    fleet,
		basePop:  replicas[0].Graph.ItemPopularity(),
		cache:    make(map[string]Recommender),
		errCache: make(map[string]error),
	}
	if cfg.WALDir != "" {
		if err := s.enableDurability(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// buildGraphViews constructs the fleet's ShardCount graph views — from
// Config.WALDir's checkpoint when one exists, else fresh from the
// dataset. One base graph is built either way; with ShardCount > 1 it is
// split into shared-base views (graph.ShareViews), so fleet memory does
// not scale with the shard count.
func buildGraphViews(d *dataset.Dataset, cfg Config) ([]*graph.Bipartite, error) {
	if cfg.WALDir != "" {
		views, ok, err := restoreCheckpointViews(cfg)
		if err != nil {
			return nil, err
		}
		if ok {
			return views, nil
		}
	}
	g := d.Graph()
	if cfg.ShardCount <= 1 {
		g.SetCompactThreshold(cfg.CompactThreshold)
		return []*graph.Bipartite{g}, nil
	}
	return graph.ShareViews(g, cfg.ShardCount), nil
}

// restoreCheckpointViews rebuilds the fleet's graph views from the
// checkpoint in Config.WALDir, reporting ok=false on first boot (no
// checkpoint yet). Both checkpoint formats load: a shared-base image
// (KindSharedCheckpoint) natively, a legacy per-shard image
// (KindCheckpoint) by conversion — so a server upgraded across the
// format change restarts from its old checkpoint. The base graph is
// rebuilt once with its original base/live universe split preserved (so
// models trained against the dataset universe still validate after live
// admissions), then split into views, each replaying its own overlay
// delta and resuming its recorded epoch.
func restoreCheckpointViews(cfg Config) ([]*graph.Bipartite, bool, error) {
	path := filepath.Join(cfg.WALDir, checkpointFileName)
	if _, err := os.Stat(path); err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil // first boot: nothing to restore
		}
		return nil, false, fmt.Errorf("longtail: checkpoint: %w", err)
	}
	var cp *persist.SharedFleetCheckpoint
	if err := persist.LoadFile(path, func(r io.Reader) error {
		var lerr error
		cp, lerr = persist.LoadAnyFleetCheckpoint(r)
		return lerr
	}); err != nil {
		return nil, false, fmt.Errorf("longtail: checkpoint: %w", err)
	}
	if len(cp.Shards) != cfg.ShardCount {
		return nil, false, fmt.Errorf("longtail: checkpoint holds %d shards, config wants %d — restart with the checkpointed shard count (resharding needs a rebuild from the dataset)",
			len(cp.Shards), cfg.ShardCount)
	}
	g, err := graph.FromSnapshotWithBase(cp.Base, cp.BaseUsers, cp.BaseItems)
	if err != nil {
		return nil, false, fmt.Errorf("longtail: checkpoint base: %w", err)
	}
	if cfg.ShardCount <= 1 {
		if err := replayOverlay(g, cp.Shards[0], 0); err != nil {
			return nil, false, err
		}
		g.SetCompactThreshold(cfg.CompactThreshold)
		return []*graph.Bipartite{g}, true, nil
	}
	views := graph.ShareViews(g, cfg.ShardCount)
	for i, ov := range cp.Shards {
		if err := replayOverlay(views[i], ov, i); err != nil {
			return nil, false, err
		}
	}
	return views, true, nil
}

// replayOverlay re-applies one shard's checkpointed overlay delta to its
// view and resumes the recorded epoch (authoritative: the replay itself
// moves the counter, as live writes would).
func replayOverlay(g *graph.Bipartite, ov persist.ShardOverlay, shardIdx int) error {
	for _, r := range ov.Deltas {
		if _, err := g.UpsertRating(r.User, r.Item, r.Weight); err != nil {
			return fmt.Errorf("longtail: checkpoint shard %d delta (%d,%d): %w", shardIdx, r.User, r.Item, err)
		}
	}
	g.RestoreEpoch(ov.Epoch)
	return nil
}

// enableDurability opens the write-ahead log, replays its tail over the
// (possibly checkpoint-restored) fleet, and arms the group-commit write
// path. Called once from NewSystem.
func (s *System) enableDurability() error {
	if err := os.MkdirAll(s.cfg.WALDir, 0o755); err != nil {
		return fmt.Errorf("longtail: wal dir: %w", err)
	}
	s.ckptPath = filepath.Join(s.cfg.WALDir, checkpointFileName)
	log, err := wal.Open(filepath.Join(s.cfg.WALDir, walFileName))
	if err != nil {
		return fmt.Errorf("longtail: %w", err)
	}
	// The restored images cover every record below the log's base
	// sequence; the epoch they carry is the last checkpoint's.
	s.fleet.SetLastCheckpointEpoch(s.fleet.Epoch())
	// Replay the tail: every durable record the last checkpoint does not
	// cover, applied to its home shard exactly as live traffic would be.
	// A torn final record (crash mid-append) was already truncated away
	// by Open; a crash between checkpoint and log truncation leaves
	// records below the checkpoint's coverage, which the sequence gate
	// skips.
	if err := log.Replay(log.BaseSeq(), func(_ uint64, rec wal.Record) error {
		return s.fleet.ApplyRecord(rec)
	}); err != nil {
		log.Close()
		return fmt.Errorf("longtail: wal replay: %w", err)
	}
	if err := s.fleet.EnableDurability(log, wal.BatchOptions{
		MaxBatch: s.cfg.WALMaxBatch,
		MaxDelay: s.cfg.WALMaxDelay,
	}); err != nil {
		log.Close()
		return fmt.Errorf("longtail: %w", err)
	}
	return nil
}

// SnapshotRefresh runs one durability maintenance cycle: it converges
// every shard replica (replaying the write-ahead log's tail into the
// shards that did not originally receive each write — closing the
// cross-shard eventual-consistency gap), compacts the fleet, writes an
// atomic checkpoint to Config.WALDir and truncates the log behind it.
// Serialized against the group-commit stream, so acknowledged writes are
// never lost or double-applied; concurrent reads keep being served (a
// converged shard's epoch moves once per refresh, invalidating its
// cached results in one step). Errors if the System has no WALDir.
// ltr-server runs this on a timer (-checkpoint-interval).
func (s *System) SnapshotRefresh() error {
	if s.ckptPath == "" {
		return fmt.Errorf("longtail: no WAL directory configured")
	}
	if err := s.fleet.SnapshotRefresh(s.ckptPath); err != nil {
		return fmt.Errorf("longtail: %w", err)
	}
	return nil
}

// Close shuts the durable write path down gracefully: it commits the
// pending group-commit batch (writers racing Close get a retryable
// error), writes a final checkpoint covering everything, and closes the
// log. Idempotent; a no-op for systems without a WAL directory. Serving
// reads remain available throughout and after.
func (s *System) Close() error {
	s.closeOnce.Do(func() {
		if s.ckptPath == "" {
			return
		}
		s.fleet.FlushDurability()
		if err := s.fleet.SnapshotRefresh(s.ckptPath); err != nil {
			s.closeErr = fmt.Errorf("longtail: final checkpoint: %w", err)
		}
		if err := s.fleet.CloseDurability(); err != nil && s.closeErr == nil {
			s.closeErr = fmt.Errorf("longtail: %w", err)
		}
	})
	return s.closeErr
}

// Data returns the training dataset.
func (s *System) Data() *dataset.Dataset { return s.data }

// Graph returns the primary (shard 0) user–item bipartite graph — with
// ShardCount 1, the serving graph exactly as before. On a sharded system
// prefer the System-level surfaces (ApplyRating, Universe, ...), which
// route by user; writing this graph directly bypasses shard routing, and
// persisting it alone drops the live writes routed to the other shards —
// save every ShardGraph(i) instead (see SaveGraph).
func (s *System) Graph() *graph.Bipartite { return s.fleet.Replica(0).Graph }

// ShardGraph returns shard i's serving graph (i in [0, ShardCount())).
// A sharded deployment that snapshots its live state must persist every
// shard's graph — each holds only the live writes routed to it.
func (s *System) ShardGraph(i int) *graph.Bipartite { return s.fleet.Replica(i).Graph }

// ShardCount returns the number of serving replicas.
func (s *System) ShardCount() int { return s.fleet.NumShards() }

// ShardFor returns the shard index serving the given user — the
// consistent assignment every read and write for that user routes to.
func (s *System) ShardFor(user int) int { return s.fleet.ShardFor(user) }

// Epoch returns the fleet-wide serving epoch: the number of live rating
// writes accepted since construction, summed across shards. Cached
// recommendation results are keyed on their own shard's epoch.
func (s *System) Epoch() uint64 { return s.fleet.Epoch() }

// ApplyRating ingests one live rating write (insert or re-rate) into the
// writing user's serving shard, reporting whether a new edge was created
// and THAT SHARD's epoch after the write — only the written shard's
// cached results are invalidated; the other shards' caches stay warm.
// With Config.AutoGrow the universe is open: a user or item id the
// system has never seen is admitted (appended to the shard's graph,
// epoch bumped per admission) instead of rejected — only negative ids
// and ids more than MaxDenseAdmissions past the universe edge still
// fail. The write is immediately visible to the walk recommenders
// (HT/AT/AC*) serving that user's shard. Dataset-derived baselines
// (PureSVD, LDA, kNN, …) and the graph-snapshot comparators (Katz,
// CommuteTime, RWR — whose chains are frozen at lazy construction) keep
// scoring against their snapshot until rebuilt; the dataset views (Data)
// are likewise snapshot-scoped.
func (s *System) ApplyRating(user, item int, score float64) (added bool, epoch uint64, err error) {
	added, epoch, _, err = s.fleet.ApplyRating(user, item, score, s.cfg.AutoGrow)
	if err != nil {
		return false, epoch, fmt.Errorf("longtail: %w", err)
	}
	return added, epoch, nil
}

// Universe returns the live serving universe: the fleet-wide user and
// item counts, including any users and items admitted through
// ApplyRating with AutoGrow on (admissions land on the writing user's
// shard; the fleet universe is the per-side maximum, i.e. the union).
// Data().NumUsers()/NumItems() describe the training snapshot instead.
func (s *System) Universe() (numUsers, numItems int) {
	return s.fleet.Universe()
}

// LiveItemPopularity returns each item's live rater count — the dataset
// popularity plus every accepted live write across all shards, covering
// items admitted after construction. The fleet-wide view costs one
// catalog scan per shard; latency-sensitive per-user callers should use
// LiveItemPopularityFor instead.
func (s *System) LiveItemPopularity() []int {
	return s.fleet.MergedItemPopularity(s.basePop)
}

// LiveItemPopularityFor returns the live rater counts as seen by the
// given user's serving shard — the view consistent with that user's
// recommendations, at the cost of a single catalog scan regardless of
// the shard count (with one shard it is exactly LiveItemPopularity).
func (s *System) LiveItemPopularityFor(user int) []int {
	return s.fleet.GraphFor(user).ItemPopularity()
}

// PopularItems returns the k most-rated items of the user's serving
// shard, most popular first with ties broken toward the smaller item
// index — the deterministic non-personalized fallback the serving layer
// degrades to when an algorithm cannot anchor on a user. Items the user
// has already rated (per that shard's live graph) are excluded, matching
// every personalized path; pass a user outside the universe (e.g. -1)
// for the raw list.
func (s *System) PopularItems(user, k int) []Scored {
	g := s.fleet.GraphFor(user)
	return popularItemsFrom(g, g.ItemPopularity(), user, k)
}

// popularItemsFrom is the popularity ranking over an already-fetched
// live popularity vector of one shard's graph, so callers that need the
// vector anyway (the option-filtered fallback) pay for one catalog scan,
// not two.
func popularItemsFrom(g *graph.Bipartite, pop []int, user, k int) []Scored {
	var rated map[int]struct{}
	if user >= 0 && user < g.NumUsers() {
		items, _ := g.UserItems(user)
		rated = make(map[int]struct{}, len(items))
		for _, i := range items {
			rated[i] = struct{}{}
		}
	}
	sel := topk.NewSelector(k)
	for i, p := range pop {
		if _, skip := rated[i]; skip {
			continue
		}
		sel.Offer(i, float64(p))
	}
	items := sel.Take()
	out := make([]Scored, len(items))
	for i, it := range items {
		out[i] = Scored{Item: it.ID, Score: it.Score}
	}
	return out
}

// CompactGraph folds every shard's pending delta-overlay writes into its
// CSR. Content-neutral: no epoch (and thus no cache entry) is touched.
// Writes also auto-compact every Config.CompactThreshold writes.
func (s *System) CompactGraph() { s.fleet.Compact() }

// ServingStats reports the live-serving state: the fleet-wide epoch
// (total accepted writes), pending overlay writes and result-cache
// counters summed across shards, plus the per-shard breakdown in
// Shards — each shard's own epoch, universe and cache counters (length
// 1 on the single-replica stack).
func (s *System) ServingStats() core.ServingStats {
	shards := s.fleet.ShardStats()
	st := core.ServingStats{
		CacheEnabled: s.cfg.CacheSize > 0,
		Shards:       shards,
	}
	for _, sh := range shards {
		st.Epoch += sh.Epoch
		st.PendingWrites += sh.PendingWrites
		st.Cache.Hits += sh.Cache.Hits
		st.Cache.Misses += sh.Cache.Misses
		st.Cache.Shared += sh.Cache.Shared
		st.Cache.Evictions += sh.Cache.Evictions
		st.Cache.FingerprintHits += sh.Cache.FingerprintHits
		st.Cache.FingerprintRejects += sh.Cache.FingerprintRejects
		st.Cache.JournalOverflows += sh.Cache.JournalOverflows
		st.Cache.Size += sh.Cache.Size
		st.Cache.Capacity += sh.Cache.Capacity
	}
	st.Durability = s.fleet.DurabilityStats()
	return st
}

// EvictStaleCache eagerly drops cached results from earlier epochs (they
// are already unreachable — this reclaims their memory), sweeping each
// shard's cache against that shard's own epoch, and returns how many
// entries were removed. Each call does a bounded amount of work per
// cache shard so it cannot stall serving lookups; on very large caches
// call it periodically to converge (ltr-server's -evict-interval janitor
// does exactly that). No-op without caches.
func (s *System) EvictStaleCache() int { return s.fleet.EvictStale() }

// LDAModel returns the trained LDA model shared by AC2 and the LDA
// baseline, training it on first call.
func (s *System) LDAModel() (*lda.Model, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ldaModelLocked()
}

func (s *System) ldaModelLocked() (*lda.Model, error) {
	if s.ldaModel == nil && s.ldaErr == nil {
		cfg := s.cfg.LDA
		if cfg.Seed == 0 {
			cfg.Seed = s.cfg.Seed + 1
		}
		s.ldaModel, s.ldaErr = lda.Train(s.data, cfg)
	}
	return s.ldaModel, s.ldaErr
}

// replicaFactory builds one shard's recommender over that shard's graph.
// Shared dataset-derived state (trained models, entropy vectors) is
// computed once by the prep stage of build and captured by the factory,
// so only the graph-bound wiring runs per shard.
type replicaFactory func(g *graph.Bipartite) (Recommender, error)

// build memoizes recommender construction under a name. prep runs once
// (under the System lock — it may train shared models) and returns the
// per-shard factory; the factory then runs once per serving replica over
// that replica's graph. When result caching is enabled every per-shard
// recommender is wrapped in that shard's epoch-invalidated caching
// layer, so repeat queries against an unchanged shard are O(1); with
// more than one shard the per-shard recommenders are fronted by a
// shard.Router that routes by user id.
func (s *System) build(name string, prep func() (replicaFactory, error)) (Recommender, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.cache[name]; ok {
		return r, nil
	}
	if err, ok := s.errCache[name]; ok {
		return nil, err
	}
	r, err := s.buildLocked(name, prep)
	if err != nil {
		s.errCache[name] = err
		return nil, err
	}
	s.cache[name] = r
	return r, nil
}

func (s *System) buildLocked(name string, prep func() (replicaFactory, error)) (Recommender, error) {
	mk, err := prep()
	if err != nil {
		return nil, err
	}
	n := s.fleet.NumShards()
	perShard := make([]core.RecommenderV2, n)
	for i := 0; i < n; i++ {
		rep := s.fleet.Replica(i)
		rec, err := mk(rep.Graph)
		if err != nil {
			return nil, err
		}
		if rep.Cache != nil {
			cr, err := core.NewCachedRecommender(rec, rep.Graph, rep.Cache)
			if err != nil {
				return nil, err
			}
			rec = cr
		}
		v2, ok := rec.(core.RecommenderV2)
		if !ok {
			return nil, fmt.Errorf("longtail: %s does not implement the Request query surface", name)
		}
		perShard[i] = v2
	}
	if n == 1 {
		// Single replica: serve the recommender directly — the exact
		// unsharded stack, no routing layer on the hot path.
		return perShard[0], nil
	}
	router, err := shard.NewRouter(name, perShard)
	if err != nil {
		return nil, err
	}
	return router, nil
}

// mustBuild is build for per-shard constructors that cannot fail.
func (s *System) mustBuild(name string, mk func(g *graph.Bipartite) Recommender) Recommender {
	r, err := s.build(name, func() (replicaFactory, error) {
		return func(g *graph.Bipartite) (Recommender, error) { return mk(g), nil }, nil
	})
	if err != nil {
		panic(fmt.Sprintf("longtail: %s: %v", name, err)) // unreachable
	}
	return r
}

// HT returns the Hitting Time recommender (§3.3).
func (s *System) HT() Recommender {
	return s.mustBuild("HT", func(g *graph.Bipartite) Recommender {
		return core.NewHittingTime(g, s.cfg.Walk)
	})
}

// AT returns the Absorbing Time recommender (§4.1, Algorithm 1).
func (s *System) AT() Recommender {
	return s.mustBuild("AT", func(g *graph.Bipartite) Recommender {
		return core.NewAbsorbingTime(g, s.cfg.Walk)
	})
}

// AC1 returns the item-entropy Absorbing Cost recommender (§4.2.2).
func (s *System) AC1() (Recommender, error) {
	return s.build("AC1", func() (replicaFactory, error) {
		ent := entropy.AllItemBased(s.data) // shared: dataset-derived
		return func(g *graph.Bipartite) (Recommender, error) {
			return core.NewAbsorbingCost(g, "AC1", ent, s.costOptions())
		}, nil
	})
}

// AC2 returns the topic-entropy Absorbing Cost recommender (§4.2.3). It
// trains the shared LDA model on first use.
func (s *System) AC2() (Recommender, error) {
	return s.build("AC2", func() (replicaFactory, error) {
		m, err := s.ldaModelLocked()
		if err != nil {
			return nil, fmt.Errorf("longtail: AC2 LDA training: %w", err)
		}
		ent := entropy.AllTopicBased(m) // shared: one LDA model for the fleet
		return func(g *graph.Bipartite) (Recommender, error) {
			return core.NewAbsorbingCost(g, "AC2", ent, s.costOptions())
		}, nil
	})
}

// AC3 returns the symmetric entropy-cost recommender — this library's
// extension of §4.2.1: user→item transitions cost the item's rater
// entropy instead of the constant C, so blockbuster hubs become expensive
// in both directions. Not part of the paper's evaluated suite.
func (s *System) AC3() (Recommender, error) {
	return s.build("AC3", func() (replicaFactory, error) {
		ue := entropy.AllItemBased(s.data)
		ie := entropy.AllItemEntropy(s.data)
		return func(g *graph.Bipartite) (Recommender, error) {
			return core.NewSymmetricAbsorbingCost(g, "AC3", ue, ie, s.costOptions())
		}, nil
	})
}

func (s *System) costOptions() core.CostOptions {
	return core.CostOptions{
		WalkOptions:  s.cfg.Walk,
		UserCost:     s.cfg.UserCost,
		EntropyFloor: s.cfg.EntropyFloor,
	}
}

// DPPR returns the Discounted Personalized PageRank baseline (Eq. 15).
func (s *System) DPPR() Recommender {
	return s.mustBuild("DPPR", func(g *graph.Bipartite) Recommender {
		r, err := core.NewFuncRecommender("DPPR", g, func(u int) ([]float64, error) {
			return pagerank.ForUser(g, u, s.cfg.PageRank)
		})
		if err != nil {
			panic(err) // static arguments; unreachable
		}
		return r
	})
}

// PPR returns the undiscounted Personalized PageRank comparator the paper
// discusses in §5.1.1 — included to demonstrate the popularity bias that
// motivates DPPR's discount.
func (s *System) PPR() Recommender {
	return s.mustBuild("PPR", func(g *graph.Bipartite) Recommender {
		r, err := core.NewFuncRecommender("PPR", g, func(u int) ([]float64, error) {
			items, _ := g.UserItems(u)
			restart := make([]int, 0, len(items)+1)
			for _, i := range items {
				restart = append(restart, g.ItemNode(i))
			}
			if len(restart) == 0 {
				restart = append(restart, g.UserNode(u))
			}
			ppr, err := pagerank.Personalized(g, restart, s.cfg.PageRank)
			if err != nil {
				return nil, err
			}
			return pagerank.ItemScores(g, ppr), nil
		})
		if err != nil {
			panic(err) // static arguments; unreachable
		}
		return r
	})
}

// Katz returns the truncated Katz-index comparator of §3.2, another
// proximity with no popularity discount.
func (s *System) Katz() (Recommender, error) {
	return s.build("Katz", func() (replicaFactory, error) {
		return func(g *graph.Bipartite) (Recommender, error) {
			// Compact first so each shard's chain snapshot includes its
			// pending live writes; like the factor-model baselines it is
			// frozen afterwards.
			g.Compact()
			chain, err := markov.NewChain(g.Adjacency())
			if err != nil {
				return nil, err
			}
			return core.NewFuncRecommender("Katz", g, func(u int) ([]float64, error) {
				scores, err := chain.KatzScores(g.UserNode(u), 0.005, 8)
				if err != nil {
					return nil, err
				}
				out := make([]float64, g.NumItems())
				for i := range out {
					out[i] = scores[g.ItemNode(i)]
				}
				return out, nil
			})
		}, nil
	})
}

// CommuteTime returns the commute-time comparator of §3.2 (Fouss et al.):
// rank items by smallest H(q|j) + H(j|q). The paper argues it is dominated
// by the stationary distribution and so recommends popular items — include
// it to reproduce that argument.
func (s *System) CommuteTime() (Recommender, error) {
	return s.build("CommuteTime", func() (replicaFactory, error) {
		return func(g *graph.Bipartite) (Recommender, error) {
			g.Compact() // include pending live writes in the frozen snapshot
			chain, err := markov.NewChain(g.Adjacency())
			if err != nil {
				return nil, err
			}
			return core.NewFuncRecommender("CommuteTime", g, func(u int) ([]float64, error) {
				ct, err := chain.CommuteTimes(g.UserNode(u))
				if err != nil {
					return nil, err
				}
				out := make([]float64, g.NumItems())
				for i := range out {
					out[i] = -ct[g.ItemNode(i)] // smaller commute time = better
				}
				return out, nil
			})
		}, nil
	})
}

// RWR returns the random-walk-with-restart comparator of §3.2 (Tong et
// al.), another proximity with no popularity discount.
func (s *System) RWR() (Recommender, error) {
	return s.build("RWR", func() (replicaFactory, error) {
		return func(g *graph.Bipartite) (Recommender, error) {
			g.Compact() // include pending live writes in the frozen snapshot
			chain, err := markov.NewChain(g.Adjacency())
			if err != nil {
				return nil, err
			}
			return core.NewFuncRecommender("RWR", g, func(u int) ([]float64, error) {
				scores, err := chain.RWRScores(g.UserNode(u), 0.85, 50, 1e-9)
				if err != nil {
					return nil, err
				}
				out := make([]float64, g.NumItems())
				for i := range out {
					out[i] = scores[g.ItemNode(i)]
				}
				return out, nil
			})
		}, nil
	})
}

// funcBaseline builds the per-shard factory every score-function
// baseline shares: one dataset-trained scoring model (computed once by
// the caller) adapted over each shard's graph for rated-item exclusion.
func funcBaseline(name string, fn core.ScoreFunc) replicaFactory {
	return func(g *graph.Bipartite) (Recommender, error) {
		return core.NewFuncRecommender(name, g, fn)
	}
}

// PureSVD returns the PureSVD baseline (Cremonesi et al. 2010).
func (s *System) PureSVD() (Recommender, error) {
	return s.build("PureSVD", func() (replicaFactory, error) {
		rank := s.cfg.SVDRank
		if maxRank := min(s.data.NumUsers(), s.data.NumItems()); rank > maxRank {
			rank = maxRank
		}
		model, err := svd.NewPureSVD(s.data, svd.Options{Rank: rank, Seed: s.cfg.Seed + 2})
		if err != nil {
			return nil, fmt.Errorf("longtail: PureSVD: %w", err)
		}
		return funcBaseline("PureSVD", func(u int) ([]float64, error) {
			return model.ScoreAll(u, nil), nil
		}), nil
	})
}

// BiasedMF returns the SGD-trained regularized biased matrix factorization
// (the Netflix-Prize workhorse the paper's §2 refers to as "regularized
// Singular Value Decomposition").
func (s *System) BiasedMF() (Recommender, error) {
	return s.build("BiasedMF", func() (replicaFactory, error) {
		opts := s.mfOptions(3)
		model, err := mf.TrainBiasedMF(s.data, opts)
		if err != nil {
			return nil, fmt.Errorf("longtail: BiasedMF: %w", err)
		}
		return funcBaseline("BiasedMF", func(u int) ([]float64, error) {
			return model.ScoreAll(u, nil), nil
		}), nil
	})
}

// SVDPP returns the SVD++ baseline (Koren, KDD 2008) cited by §5.1.1 as
// one of the strong factor models PureSVD beats on top-N tasks.
func (s *System) SVDPP() (Recommender, error) {
	return s.build("SVDPP", func() (replicaFactory, error) {
		opts := s.mfOptions(4)
		model, err := mf.TrainSVDPP(s.data, opts)
		if err != nil {
			return nil, fmt.Errorf("longtail: SVDPP: %w", err)
		}
		return funcBaseline("SVDPP", func(u int) ([]float64, error) {
			return model.ScoreAll(u, nil), nil
		}), nil
	})
}

// AsySVD returns the Asymmetric-SVD baseline (Koren, KDD 2008), the
// item-centric factor model cited alongside SVD++ in §5.1.1.
func (s *System) AsySVD() (Recommender, error) {
	return s.build("AsySVD", func() (replicaFactory, error) {
		opts := s.mfOptions(5)
		model, err := mf.TrainAsySVD(s.data, opts)
		if err != nil {
			return nil, fmt.Errorf("longtail: AsySVD: %w", err)
		}
		return funcBaseline("AsySVD", func(u int) ([]float64, error) {
			return model.ScoreAll(u, nil), nil
		}), nil
	})
}

// mfOptions derives per-model MF options, offsetting the seed so each
// model trains on an independent random stream.
func (s *System) mfOptions(seedOffset int64) mf.Options {
	opts := s.cfg.MF
	if opts.Seed == 0 {
		opts.Seed = s.cfg.Seed + seedOffset
	}
	return opts
}

// LDA returns the LDA recommender baseline (score = Σ_z θ_uz·φ_zi).
func (s *System) LDA() (Recommender, error) {
	return s.build("LDA", func() (replicaFactory, error) {
		m, err := s.ldaModelLocked()
		if err != nil {
			return nil, fmt.Errorf("longtail: LDA training: %w", err)
		}
		return funcBaseline("LDA", func(u int) ([]float64, error) {
			return m.ScoreAll(u, nil), nil
		}), nil
	})
}

// UserKNN returns the user-based kNN baseline (Pearson).
func (s *System) UserKNN() (Recommender, error) {
	return s.build("UserKNN", func() (replicaFactory, error) {
		knn, err := cf.NewUserKNN(s.data, s.cfg.KNNNeighbors, cf.Pearson)
		if err != nil {
			return nil, err
		}
		return funcBaseline("UserKNN", func(u int) ([]float64, error) {
			return knn.ScoreAll(u, nil), nil
		}), nil
	})
}

// ItemKNN returns the item-based kNN baseline (cosine).
func (s *System) ItemKNN() (Recommender, error) {
	return s.build("ItemKNN", func() (replicaFactory, error) {
		knn, err := cf.NewItemKNN(s.data, s.cfg.KNNNeighbors)
		if err != nil {
			return nil, err
		}
		return funcBaseline("ItemKNN", func(u int) ([]float64, error) {
			return knn.ScoreAll(u, nil), nil
		}), nil
	})
}

// AssocRules returns the pairwise association-rule comparator the paper's
// introduction singles out: rules need high support on both sides, so
// recommendations cover only the head of the catalog.
func (s *System) AssocRules() (Recommender, error) {
	return s.build("AssocRules", func() (replicaFactory, error) {
		miner, err := assoc.Mine(s.data, assoc.Options{})
		if err != nil {
			return nil, fmt.Errorf("longtail: AssocRules: %w", err)
		}
		return funcBaseline("AssocRules", func(u int) ([]float64, error) {
			return miner.ScoreAll(u, nil), nil
		}), nil
	})
}

// MostPopular returns the non-personalized popularity baseline.
func (s *System) MostPopular() Recommender {
	return s.mustBuild("MostPopular", func(g *graph.Bipartite) Recommender {
		mp := cf.NewMostPopular(s.data)
		r, err := core.NewFuncRecommender("MostPopular", g, func(u int) ([]float64, error) {
			return mp.ScoreAll(u, nil), nil
		})
		if err != nil {
			panic(err) // unreachable
		}
		return r
	})
}

// PaperSuite returns the seven algorithms of the paper's evaluation in its
// plotting order: AC2, AC1, AT, HT, DPPR, PureSVD, LDA.
func (s *System) PaperSuite() ([]Recommender, error) {
	ac2, err := s.AC2()
	if err != nil {
		return nil, err
	}
	ac1, err := s.AC1()
	if err != nil {
		return nil, err
	}
	psvd, err := s.PureSVD()
	if err != nil {
		return nil, err
	}
	ldaRec, err := s.LDA()
	if err != nil {
		return nil, err
	}
	return []Recommender{ac2, ac1, s.AT(), s.HT(), s.DPPR(), psvd, ldaRec}, nil
}

// algorithmRegistry is the single ordered source of truth for the
// algorithm suite: Algorithm resolution and AlgorithmNames are both
// derived from it, so a new algorithm is added in exactly one place and
// the two can never drift (a parity test in longtail_test.go holds the
// invariant).
var algorithmRegistry = []struct {
	name  string
	build func(*System) (Recommender, error)
}{
	{"HT", func(s *System) (Recommender, error) { return s.HT(), nil }},
	{"AT", func(s *System) (Recommender, error) { return s.AT(), nil }},
	{"AC1", (*System).AC1},
	{"AC2", (*System).AC2},
	{"AC3", (*System).AC3},
	{"DPPR", func(s *System) (Recommender, error) { return s.DPPR(), nil }},
	{"PPR", func(s *System) (Recommender, error) { return s.PPR(), nil }},
	{"Katz", (*System).Katz},
	{"CommuteTime", (*System).CommuteTime},
	{"RWR", (*System).RWR},
	{"PureSVD", (*System).PureSVD},
	{"BiasedMF", (*System).BiasedMF},
	{"SVDPP", (*System).SVDPP},
	{"AsySVD", (*System).AsySVD},
	{"LDA", (*System).LDA},
	{"UserKNN", (*System).UserKNN},
	{"ItemKNN", (*System).ItemKNN},
	{"AssocRules", (*System).AssocRules},
	{"MostPopular", func(s *System) (Recommender, error) { return s.MostPopular(), nil }},
}

// Algorithm resolves a recommender by its paper name (HT, AT, AC1, AC2,
// DPPR, PureSVD, LDA, UserKNN, ItemKNN, MostPopular, ...): every name
// in AlgorithmNames resolves here and nothing else does.
func (s *System) Algorithm(name string) (Recommender, error) {
	for _, entry := range algorithmRegistry {
		if entry.name == name {
			return entry.build(s)
		}
	}
	return nil, fmt.Errorf("longtail: unknown algorithm %q (want one of %v)", name, AlgorithmNames())
}

// Algorithms lists every name this System's Algorithm method accepts.
func (s *System) Algorithms() []string { return AlgorithmNames() }

// Recommend serves one context-aware recommendation Request through the
// named algorithm — the primary query surface. ctx bounds the whole
// query (the walk engine checks it at the subgraph-extraction
// boundaries and between τ sweeps, so a cancelled or deadlined request
// aborts mid-walk); when req.Ctx is also set, req.Ctx wins. The
// per-request options — ExcludeItems, CandidateItems, LongTailOnly —
// are honored natively by every recommender in the suite, and with
// req.AllowFallback a user the algorithm cannot anchor on (no rating
// history, or a snapshot model that predates them) degrades to the
// deterministic live-popularity list, filtered through the same
// options, instead of failing.
func (s *System) Recommend(ctx context.Context, algo string, req Request) (Response, error) {
	// Reject malformed options before resolving the algorithm: lazy
	// constructors (LDA training for AC2, SGD for the MF baselines) must
	// not be triggered by a request that cannot be served anyway.
	if err := req.Validate(); err != nil {
		return Response{}, err
	}
	rec, err := s.Algorithm(algo)
	if err != nil {
		return Response{}, err
	}
	if req.Ctx == nil {
		req.Ctx = ctx
	}
	if s.phantomUser(req.User) {
		// In the fleet universe but absent from the home shard: a cold
		// user by construction (no ratings anywhere) — same outcome the
		// unsharded stack gives a dense-filled, rating-less user.
		if req.AllowFallback {
			return s.fallbackResponse(req, rec.Name()), nil
		}
		return Response{}, fmt.Errorf("longtail: user %d: %w", req.User, core.ErrColdUser)
	}
	resp, err := core.RecommendRequest(rec, req)
	if err != nil {
		if errors.Is(err, core.ErrColdUser) && req.AllowFallback {
			return s.fallbackResponse(req, rec.Name()), nil
		}
		return Response{}, err
	}
	return resp, nil
}

// phantomUser reports whether user id u is inside the fleet universe but
// beyond its own home shard's graph. Auto-grow admissions keep each id
// space dense per shard, so a far-ahead write dense-fills the ids
// between only on the WRITING user's shard; an id in that gap routes to
// a home shard that has never seen it. Such a user has no ratings
// anywhere in the fleet, so the serving layer treats it exactly like the
// unsharded stack treats a dense-filled, rating-less user: cold. Always
// false with one shard.
func (s *System) phantomUser(u int) bool {
	if u < 0 || s.fleet.NumShards() == 1 {
		return false
	}
	if u < s.fleet.GraphFor(u).NumUsers() {
		return false
	}
	numUsers, _ := s.fleet.Universe()
	return u < numUsers
}

// RecommendRequests serves a batch of Requests through the named
// algorithm, spreading the work across up to parallelism goroutines
// (<= 0 means GOMAXPROCS) when the algorithm supports concurrent
// scoring. ctx fills any request whose own Ctx is nil, and each
// request's context is honored by the workers individually. Cold users
// degrade to the popularity fallback when their request allows it and
// yield a zero Response otherwise.
func (s *System) RecommendRequests(ctx context.Context, algo string, reqs []Request, parallelism int) ([]Response, error) {
	// Reject malformed option sets before the (possibly lazy-training)
	// algorithm resolves; one validation per distinct option storage —
	// the usual batch fans one template across every user.
	for i := range reqs {
		if i == 0 || !core.SameOptionStorage(reqs[i], reqs[i-1]) {
			if err := reqs[i].Validate(); err != nil {
				return nil, err
			}
		}
	}
	rec, err := s.Algorithm(algo)
	if err != nil {
		return nil, err
	}
	filled := make([]Request, len(reqs))
	var phantoms []int // input positions of users absent from their home shard
	for i, req := range reqs {
		if req.Ctx == nil {
			req.Ctx = ctx
		}
		filled[i] = req
		if s.phantomUser(req.User) {
			phantoms = append(phantoms, i)
		}
	}
	// Phantom users (dense-filled on another shard, see phantomUser) must
	// not reach the engines: their home shard would reject them as out of
	// range and abort the whole batch, where the unsharded stack serves
	// them as cold. Keep them out of the computed subset; they stay zero
	// Responses and take the fallback below like any cold user.
	serve := filled
	if len(phantoms) > 0 {
		serve = make([]Request, 0, len(filled)-len(phantoms))
		next := 0
		for i, req := range filled {
			if next < len(phantoms) && phantoms[next] == i {
				next++
				continue
			}
			serve = append(serve, req)
		}
	}
	computed, err := core.BatchRecommendRequests(rec, serve, parallelism)
	if err != nil {
		return nil, err
	}
	out := computed
	if len(phantoms) > 0 {
		out = make([]Response, len(filled))
		next, j := 0, 0
		for i := range filled {
			if next < len(phantoms) && phantoms[next] == i {
				next++
				continue // phantom: zero Response
			}
			out[i] = computed[j]
			j++
		}
	}
	for i := range out {
		// A zero Response (no Algo) marks a user the algorithm could not
		// anchor on; serve the fallback when that request allows it.
		if out[i].Algo == "" && filled[i].AllowFallback {
			out[i] = s.fallbackResponse(filled[i], rec.Name())
		}
	}
	return out, nil
}

// fallbackResponse builds the degraded Response for a cold user: the
// deterministic live-popularity list of the user's serving shard minus
// the user's rated items, passed through the request's own option
// filters (so a long-tail-only or candidate-scoped request stays
// long-tail-only or candidate-scoped even when degraded). The Epoch is
// the serving shard's, matching every personalized response.
func (s *System) fallbackResponse(req Request, algo string) Response {
	k := req.K
	if k < 0 {
		k = 0
	}
	g := s.fleet.GraphFor(req.User)
	var items []Scored
	if req.HasOptions() {
		// Pull the full popularity ranking so post-filtering can still
		// fill all k slots, sharing one catalog scan between the ranking
		// and the long-tail filter. Off the hot path: fallbacks are rare
		// and the catalog ranking is one bounded-heap pass.
		pop := g.ItemPopularity()
		full := popularItemsFrom(g, pop, req.User, len(pop))
		items = core.FilterScored(full, req, pop)
		if len(items) > k {
			items = items[:k]
		}
	} else {
		items = popularItemsFrom(g, g.ItemPopularity(), req.User, k)
	}
	return Response{
		Items:    items,
		Fallback: true,
		Epoch:    g.Epoch(),
		Algo:     algo,
	}
}

// RecommendBatch resolves algo and serves the whole user list, spreading
// the work across up to parallelism goroutines (<= 0 means GOMAXPROCS)
// when the algorithm supports concurrent scoring, and falling back to a
// sequential loop otherwise. Cold users yield a nil entry rather than
// failing the batch. The legacy batch surface: a thin wrapper over
// RecommendRequests with no context and no options.
func (s *System) RecommendBatch(algo string, users []int, k, parallelism int) ([][]Scored, error) {
	resps, err := s.RecommendRequests(context.Background(), algo, core.PlainRequests(users, k), parallelism)
	if err != nil {
		return nil, err
	}
	return core.ResponseItems(resps), nil
}

// AlgorithmNames lists every algorithm Algorithm accepts, in registry
// order.
func AlgorithmNames() []string {
	names := make([]string, len(algorithmRegistry))
	for i, entry := range algorithmRegistry {
		names[i] = entry.name
	}
	return names
}

// SimilarItem pairs an item with its similarity to a query item.
type SimilarItem = cf.SimilarItem

// SimilarItems returns up to k items most similar to item by cosine over
// the rating vectors — the "customers who liked this also liked"
// item-to-item view. Builds the kNN index lazily on first call.
func (s *System) SimilarItems(item, k int) ([]SimilarItem, error) {
	s.mu.Lock()
	if s.itemKNN == nil && s.itemKNNErr == nil {
		s.itemKNN, s.itemKNNErr = cf.NewItemKNN(s.data, s.cfg.KNNNeighbors)
	}
	knn, err := s.itemKNN, s.itemKNNErr
	s.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("longtail: SimilarItems: %w", err)
	}
	return knn.SimilarItems(item, k)
}

// Explain decomposes a would-be recommendation of candidate to user u over
// the user's rated items, as absorption probabilities of the underlying
// random walk — "83% of walks from this item reach you through the movie
// you rated 5 stars". A diagnostic companion to the AT/AC recommenders;
// it runs on the user's serving shard, the same graph their
// recommendations walk.
func (s *System) Explain(u, candidate int) ([]Anchor, error) {
	return core.ExplainAbsorption(s.fleet.GraphFor(u), u, candidate, s.cfg.Walk)
}

// NewDataset validates and indexes ratings (see internal/dataset.New).
func NewDataset(numUsers, numItems int, ratings []Rating) (*Dataset, error) {
	return dataset.New(numUsers, numItems, ratings)
}

// Builder accumulates ratings incrementally (event-stream ingest) and
// materializes a Dataset; see internal/dataset.Builder.
type Builder = dataset.Builder

// DupPolicy resolves repeated (user, item) ratings during streaming
// ingest.
type DupPolicy = dataset.DupPolicy

// Duplicate policies for NewBuilder.
const (
	KeepLast  = dataset.KeepLast
	KeepFirst = dataset.KeepFirst
	KeepMax   = dataset.KeepMax
	Reject    = dataset.Reject
)

// NewBuilder returns an empty streaming dataset builder.
func NewBuilder(policy DupPolicy) *Builder { return dataset.NewBuilder(policy) }

// SaveGraph writes one live serving graph — including pending overlay
// writes and any users/items admitted through the auto-grow path, with
// the write epoch preserved — as a versioned, checksummed binary
// container (see internal/persist). On a sharded System each shard's
// graph holds only the live writes routed to it: snapshot the whole
// fleet by saving System.ShardGraph(i) for every shard, not just
// System.Graph() (shard 0).
func SaveGraph(w io.Writer, g *graph.Bipartite) error { return persist.SaveGraph(w, g) }

// LoadGraph reads a graph container written by SaveGraph.
func LoadGraph(r io.Reader) (*graph.Bipartite, error) { return persist.LoadGraph(r) }

// SaveGraphFile writes a graph container to path.
func SaveGraphFile(path string, g *graph.Bipartite) error {
	return persist.SaveFile(path, func(w io.Writer) error { return persist.SaveGraph(w, g) })
}

// LoadGraphFile reads a graph container from path.
func LoadGraphFile(path string) (*graph.Bipartite, error) {
	var g *graph.Bipartite
	err := persist.LoadFile(path, func(r io.Reader) error {
		var lerr error
		g, lerr = persist.LoadGraph(r)
		return lerr
	})
	return g, err
}

// SaveDataset writes the dataset as a versioned, checksummed binary
// container (see internal/persist).
func SaveDataset(w io.Writer, d *Dataset) error { return persist.SaveDataset(w, d) }

// LoadDataset reads a dataset container written by SaveDataset.
func LoadDataset(r io.Reader) (*Dataset, error) { return persist.LoadDataset(r) }

// SaveDatasetFile writes a dataset container to path.
func SaveDatasetFile(path string, d *Dataset) error {
	return persist.SaveFile(path, func(w io.Writer) error { return persist.SaveDataset(w, d) })
}

// LoadDatasetFile reads a dataset container from path.
func LoadDatasetFile(path string) (*Dataset, error) {
	var d *Dataset
	err := persist.LoadFile(path, func(r io.Reader) error {
		var lerr error
		d, lerr = persist.LoadDataset(r)
		return lerr
	})
	return d, err
}

// LoadMovieLens parses MovieLens "UserID::MovieID::Rating::Timestamp" data.
func LoadMovieLens(r io.Reader) (*dataset.Loaded, error) { return dataset.LoadMovieLens(r) }

// LoadCSV parses "user,item,score" lines.
func LoadCSV(r io.Reader) (*dataset.Loaded, error) { return dataset.LoadCSV(r) }

// LoadTSV parses tab-separated "user item score" lines.
func LoadTSV(r io.Reader) (*dataset.Loaded, error) { return dataset.LoadTSV(r) }

// LoadMovieLensFile opens and parses a MovieLens ratings file.
func LoadMovieLensFile(path string) (*dataset.Loaded, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("longtail: %w", err)
	}
	defer f.Close()
	return dataset.LoadMovieLens(f)
}

// GenerateMovieLensLike builds the synthetic MovieLens-shaped corpus used
// throughout the benchmarks (see DESIGN.md §4 for the substitution).
func GenerateMovieLensLike(seed int64) (*World, error) {
	cfg := synth.MovieLensLike()
	cfg.Seed = seed
	return synth.Generate(cfg)
}

// GenerateDoubanLike builds the synthetic Douban-shaped corpus.
func GenerateDoubanLike(seed int64) (*World, error) {
	cfg := synth.DoubanLike()
	cfg.Seed = seed
	return synth.Generate(cfg)
}

// GenerateWorld builds any corpus from the internal/worlds registry
// ("movielens", "douban", "clustered", ...) — the same single-sourced
// calibrations the bench and lab tooling measure against.
func GenerateWorld(kind string, seed int64) (*World, error) {
	return worlds.Generate(kind, seed)
}

// WorldKinds returns the registered corpus kinds, sorted.
func WorldKinds() []string { return worlds.Kinds() }
