package longtail

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"longtailrec/internal/eval"
	"longtailrec/internal/lda"
	"longtailrec/internal/persist"
	"longtailrec/internal/synth"
)

// TestEndToEndPipeline exercises the full production path a downstream
// user would run: generate (or load) a corpus, k-core it, hold out a
// long-tail test set, train the system, evaluate recall and list metrics,
// and produce final recommendations — asserting the library's headline
// guarantees at every stage.
func TestEndToEndPipeline(t *testing.T) {
	world, err := synth.Generate(synth.Config{
		NumUsers:           300,
		NumItems:           420,
		NumGenres:          6,
		MeanRatingsPerUser: 25,
		MinRatingsPerUser:  8,
		Seed:               99,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := world.Data.KCore(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	split, err := data.SplitLongTailTest(rng, 40, 5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.LDA = lda.Config{NumTopics: 6, Alpha: 0.5, Iterations: 30, Seed: 2}
	cfg.SVDRank = 10
	sys, err := NewSystem(split.Train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	suite, err := sys.PaperSuite()
	if err != nil {
		t.Fatal(err)
	}

	// Recall: the graph family must beat the factor models at N=50.
	recall, err := eval.Recall(suite, split.Train, split.Test,
		eval.RecallOptions{NumNegatives: 150, MaxN: 50, Seed: 3, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	at50 := map[string]float64{}
	for _, r := range recall {
		at50[r.Name] = r.Recall[49]
	}
	graphBest := at50["AC2"]
	for _, n := range []string{"AC1", "AT", "HT"} {
		if at50[n] > graphBest {
			graphBest = at50[n]
		}
	}
	if graphBest <= at50["LDA"] || graphBest <= at50["PureSVD"] {
		t.Fatalf("graph family R@50 %.3f not above LDA %.3f / PureSVD %.3f",
			graphBest, at50["LDA"], at50["PureSVD"])
	}

	// List metrics: popularity gap in the paper's direction.
	panel, err := split.Train.SampleUsers(rng, 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	lists, err := eval.Lists(suite, split.Train, panel, eval.ListOptions{
		ListSize: 10, Ontology: world.Ontology,
	})
	if err != nil {
		t.Fatal(err)
	}
	meanPop := map[string]float64{}
	for _, m := range lists {
		meanPop[m.Name] = m.MeanPopularity
	}
	if meanPop["AC2"] >= meanPop["PureSVD"] {
		t.Fatalf("AC2 recommends more popular items (%.1f) than PureSVD (%.1f)",
			meanPop["AC2"], meanPop["PureSVD"])
	}

	// Sales diversity: the LDA baseline must concentrate exposure harder
	// than the absorbing-walk family.
	ldaRec, err := sys.LDA()
	if err != nil {
		t.Fatal(err)
	}
	ac2, err := sys.AC2()
	if err != nil {
		t.Fatal(err)
	}
	sales, err := eval.MeasureSalesDiversity([]Recommender{ac2, ldaRec}, split.Train, panel, 10)
	if err != nil {
		t.Fatal(err)
	}
	// With a 30-user panel over a 400+-item catalog, Gini is dominated by
	// never-recommended items for every algorithm, so coverage and tail
	// share are the discriminating aggregates at this scale.
	if sales[0].Coverage <= sales[1].Coverage {
		t.Fatalf("AC2 coverage %.3f not above LDA %.3f", sales[0].Coverage, sales[1].Coverage)
	}
	if sales[0].TailShare <= sales[1].TailShare {
		t.Fatalf("AC2 tail share %.3f not above LDA %.3f", sales[0].TailShare, sales[1].TailShare)
	}
	for _, sd := range sales {
		if sd.Gini < 0 || sd.Gini > 1 {
			t.Fatalf("%s Gini %v out of range", sd.Name, sd.Gini)
		}
	}
}

// TestPersistRoundTripPreservesRecommendations pins the offline→online
// contract: a dataset written through internal/persist and reloaded must
// yield byte-identical recommendations from the deterministic walk
// algorithms, and an LDA model saved after training must score exactly
// like the in-memory one.
func TestPersistRoundTripPreservesRecommendations(t *testing.T) {
	world, err := synth.Generate(synth.Config{
		NumUsers:           120,
		NumItems:           160,
		NumGenres:          4,
		MeanRatingsPerUser: 14,
		MinRatingsPerUser:  5,
		Seed:               31,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := persist.SaveDataset(&buf, world.Data); err != nil {
		t.Fatal(err)
	}
	reloaded, err := persist.LoadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.LDA = lda.Config{NumTopics: 4, Iterations: 10, Seed: 8}
	sysA, err := NewSystem(world.Data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sysB, err := NewSystem(reloaded, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"HT", "AT", "AC1"} {
		recA, err := sysA.Algorithm(name)
		if err != nil {
			t.Fatal(err)
		}
		recB, err := sysB.Algorithm(name)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < 20; u++ {
			a, errA := recA.Recommend(u, 5)
			b, errB := recB.Recommend(u, 5)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("%s user %d: error divergence %v vs %v", name, u, errA, errB)
			}
			if len(a) != len(b) {
				t.Fatalf("%s user %d: %d vs %d recommendations", name, u, len(a), len(b))
			}
			for k := range a {
				if a[k] != b[k] {
					t.Fatalf("%s user %d slot %d: %+v vs %+v", name, u, k, a[k], b[k])
				}
			}
		}
	}
	// Model persistence: the trained LDA scores identically after reload.
	model, err := sysA.LDAModel()
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := persist.SaveLDA(&buf, model); err != nil {
		t.Fatal(err)
	}
	loaded, err := persist.LoadLDA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 20; u++ {
		for i := 0; i < 20; i++ {
			if model.Score(u, i) != loaded.Score(u, i) {
				t.Fatalf("LDA score(%d,%d) changed after reload", u, i)
			}
		}
	}
}

// TestSystemConcurrentUse hammers one System from many goroutines — the
// documented guarantee that a System is safe for concurrent reads after
// construction (lazy model builds are mutex-guarded).
func TestSystemConcurrentUse(t *testing.T) {
	world, err := synth.Generate(synth.Config{
		NumUsers:           150,
		NumItems:           200,
		NumGenres:          4,
		MeanRatingsPerUser: 15,
		MinRatingsPerUser:  5,
		Seed:               5,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.LDA = lda.Config{NumTopics: 4, Iterations: 15, Seed: 6}
	cfg.SVDRank = 6
	sys, err := NewSystem(world.Data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			names := AlgorithmNames()
			for i := 0; i < 6; i++ {
				name := names[(worker+i)%len(names)]
				rec, err := sys.Algorithm(name)
				if err != nil {
					errCh <- err
					return
				}
				if _, err := rec.Recommend((worker*7+i)%world.Data.NumUsers(), 5); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
